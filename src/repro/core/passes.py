"""Pluggable per-name analysis passes for the survey engine.

PR 1 turned the survey into a staged engine whose stage 4 (analysis) was a
fixed trio: TCB report, bottleneck min-cut, hijack classification.  This
module opens that stage up: an :class:`AnalysisPass` plugs into the engine,
receives the same shared state the built-in analyses enjoy — the zero-copy
:class:`~repro.core.delegation.TCBView`, the name's chain key, the live
vulnerability maps, and the built-in analysis columns — and contributes
extra columns to every :class:`~repro.core.survey.NameRecord` (and therefore
to snapshots, reports, and diffs).

Lifecycle
---------

1. **prepare(internet)** — once per engine, before any worker context (and
   before any ``process``-backend fork), so world mutations such as a DNSSEC
   deployment are visible to every backend identically.
2. **make_state(worker)** — once per worker context (the serial engine has
   one; partitioned backends one per shard; the ``process`` backend one per
   child).  This is where per-worker mutable state lives: validators wired
   to the worker's resolver, shared memos registered as closure-index
   companions via ``worker.register_companion`` so universe growth purges
   them alongside the closures.
3. **analyze(ctx, state)** — per name.  A pass with ``chain_cacheable=True``
   (the default) promises its output is a pure function of the name's
   direct-zone chain given a fixed universe; the engine then runs it once
   per distinct chain and replays the columns for every name sharing that
   chain — the same memoization the built-in analyses get.  Randomised
   passes must derive their seed from :func:`chain_seed`, never from the
   name, or shard-local caches would break cross-backend byte-identity.

Two built-in passes reproduce Section 5 of the paper at engine scale:
:class:`AvailabilityPass` (the availability half of the security/availability
trade-off) and :class:`DNSSECImpactPass` (does DNSSEC make a hijack
detectable?).  :func:`build_passes` resolves CLI-style spec strings such as
``"availability:up=0.95;samples=100,dnssec:fraction=0.5"``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.core.availability import AvailabilityAnalyzer
from repro.core.delegation import NodeKey, TCBView
from repro.core.hijack import HIJACKABLE_CLASSIFICATIONS
from repro.dns.dnssec import ChainValidator


def chain_seed(chain_key: Tuple[NodeKey, ...]) -> str:
    """A deterministic RNG seed derived from a name's direct-zone chain.

    Chain-cacheable passes that draw random numbers must seed from the
    chain, not the name: shards cache per chain independently, so a
    name-derived seed would make the cached value depend on which name a
    shard happened to analyse first.
    """
    return "|".join(str(zone) for _kind, zone in chain_key)


@dataclasses.dataclass
class PassContext:
    """Everything a pass may read while analysing one name.

    ``builtin`` holds the built-in stage-4 columns (``classification``,
    ``tcb_size``, ``mincut_size``, ...) — passes run after them.  ``worker``
    is the engine's per-shard :class:`~repro.core.engine.WorkerContext`
    (resolver, builder, vulnerability maps, ``internet``,
    ``register_companion``).
    """

    view: TCBView
    chain_key: Tuple[NodeKey, ...]
    builtin: Mapping[str, object]
    worker: object


class AnalysisPass:
    """Base class for engine analysis passes.

    Subclasses set :attr:`name` (unique per engine), implement
    :attr:`columns` and :meth:`analyze`, and may override :meth:`prepare`
    and :meth:`make_state`.  Pass instances themselves must stay immutable
    during a survey — all mutable state belongs in the object returned by
    :meth:`make_state`, which the engine keys per worker context.
    """

    #: Unique pass name (also the CLI spec name).
    name: str = "abstract"
    #: Whether output is a pure function of the chain key (see module doc).
    chain_cacheable: bool = True

    @property
    def columns(self) -> Tuple[str, ...]:
        """The record columns this pass contributes."""
        raise NotImplementedError

    def prepare(self, internet) -> None:
        """One-time world setup, before worker contexts exist."""

    def metadata(self) -> Dict[str, object]:
        """Keys this pass contributes to the survey metadata."""
        return {}

    def spec(self) -> str:
        """This pass as a CLI spec string rebuilding an equal instance.

        The distributed coordinator configures remote workers by shipping
        spec strings through :func:`build_passes`; a pass without a
        faithful spec encoding cannot ride the socket backend.
        """
        raise NotImplementedError(
            f"pass {self.name!r} does not define a spec() encoding")

    def make_state(self, worker) -> object:
        """Create this pass's per-worker mutable state."""
        return None

    def refresh_state(self, state: object, worker) -> object:
        """Return per-worker state valid after a journalled world change.

        Called on carried worker contexts by the incremental re-survey path
        when cached verdicts may be stale (a banner change, an extended
        DNSSEC deployment).  The default rebuilds from scratch via
        :meth:`make_state`; passes whose state registered closure-index
        companions should instead clear those in place, so the companion
        registration list does not grow per delta run.
        """
        return self.make_state(worker)

    def analyze(self, ctx: PassContext, state: object) -> Dict[str, object]:
        """Compute this pass's columns for one name."""
        raise NotImplementedError

    def finalize(self, aggregator) -> Dict[str, object]:
        """Cross-record reduce, run once after every record is aggregated.

        Receives the engine's :class:`~repro.core.engine.SurveyAggregator`
        (per-server TCB membership counts, vulnerability maps, resolved
        totals — all backend-independent after the deterministic shard
        merge) and returns keys folded into the survey metadata.  This is
        the hook for analyses that are reductions over the whole survey
        rather than per-name columns — e.g. the nameserver value ranking,
        which used to re-walk materialised graphs post-hoc.
        """
        return {}

    @classmethod
    def from_options(cls, options: Dict[str, str]) -> "AnalysisPass":
        """Build an instance from CLI spec options (``key=value`` strings)."""
        if options:
            raise ValueError(f"pass {cls.name!r} takes no options, "
                             f"got {sorted(options)}")
        return cls()


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {text!r}")


class AvailabilityPass(AnalysisPass):
    """Analytic availability, SPOF count, and optional Monte-Carlo estimate.

    Runs :class:`~repro.core.availability.AvailabilityAnalyzer` directly on
    the engine's :class:`~repro.core.delegation.TCBView` — no graph copies —
    with cross-name shared memos registered as closure-index companions, so
    the recursion explores each universe region once per worker.

    Columns: ``availability`` (analytic probability), ``availability_spof``
    (number of single points of failure), and ``availability_mc`` when
    ``samples`` > 0.
    """

    name = "availability"

    def __init__(self, up: float = 0.99, samples: int = 0,
                 spof: bool = True):
        if not 0.0 <= up <= 1.0:
            raise ValueError("up must be within [0, 1]")
        if samples < 0:
            raise ValueError("samples must be >= 0")
        self.up = up
        self.samples = samples
        self.spof = spof

    @property
    def columns(self) -> Tuple[str, ...]:
        columns = ["availability"]
        if self.spof:
            columns.append("availability_spof")
        if self.samples:
            columns.append("availability_mc")
        return tuple(columns)

    def make_state(self, worker) -> AvailabilityAnalyzer:
        analyzer = AvailabilityAnalyzer(self.up, shared_memo={},
                                        shared_spof_memo={})
        worker.register_companion(analyzer.shared_memo)
        worker.register_companion(analyzer.shared_spof_memo)
        worker.register_companion(analyzer.shared_reach_memo)
        return analyzer

    def refresh_state(self, state: AvailabilityAnalyzer,
                      worker) -> AvailabilityAnalyzer:
        # The analyzer's memos are already registered as closure-index
        # companions; clear them in place (availability is verdict-free,
        # but the uniform delta contract is "no stale memo survives") and
        # keep the analyzer so the registrations stay unique.
        state.shared_memo.clear()
        state.shared_spof_memo.clear()
        state.shared_reach_memo.clear()
        return state

    def analyze(self, ctx: PassContext, state: AvailabilityAnalyzer
                ) -> Dict[str, object]:
        view = ctx.view
        values: Dict[str, object] = {
            "availability": state.resolution_probability(view)}
        if self.spof:
            values["availability_spof"] = \
                len(state.single_points_of_failure(view))
        if self.samples:
            rng = random.Random(f"availability-mc|{chain_seed(ctx.chain_key)}")
            values["availability_mc"] = state.monte_carlo(
                view, samples=self.samples, rng=rng)
        return values

    def spec(self) -> str:
        return (f"availability:up={self.up!r};samples={self.samples}"
                f";spof={'true' if self.spof else 'false'}")

    @classmethod
    def from_options(cls, options: Dict[str, str]) -> "AvailabilityPass":
        known = {"up": float, "samples": int, "spof": _parse_bool}
        kwargs = {}
        for key, text in options.items():
            if key not in known:
                raise ValueError(f"unknown availability option {key!r} "
                                 f"(expected one of {sorted(known)})")
            kwargs[key] = known[key](text)
        return cls(**kwargs)


class DNSSECImpactPass(AnalysisPass):
    """Chain-of-trust validation folded into every survey record.

    :meth:`prepare` signs the configured fraction of the world's zones (via
    :func:`repro.core.dnssec_impact.deploy_dnssec` — idempotent, so several
    engines sharing one internet agree); :meth:`analyze` validates each
    name's chain and reports whether a hijack of it would be *detectable*.

    Columns: ``dnssec_status`` (``secure`` / ``insecure`` / ``bogus``) and
    ``dnssec_detected`` (the survey classified the name as hijackable *and*
    its chain of trust validates, so a forged answer cannot pass unnoticed).
    """

    name = "dnssec"

    def __init__(self, fraction: float = 1.0, sign_tlds: bool = True,
                 seed: str = "repro-dnssec"):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        self.fraction = fraction
        self.sign_tlds = sign_tlds
        self.seed = seed
        self.deployment = None

    @property
    def columns(self) -> Tuple[str, ...]:
        return ("dnssec_status", "dnssec_detected")

    def prepare(self, internet) -> None:
        # Imported here: dnssec_impact aggregates over survey results, and
        # the survey facade reaches back into the engine package.
        from repro.core.dnssec_impact import deploy_dnssec
        # Unconditional: deployment is idempotent on one internet (signing
        # re-checks existing records), and a pass instance reused with a
        # *different* internet must sign that world too.
        self.deployment = deploy_dnssec(
            internet, fraction=self.fraction,
            always_sign_tlds=self.sign_tlds, seed=self.seed)

    def metadata(self) -> Dict[str, object]:
        return {"dnssec_fraction": self.fraction}

    def adopt_deployment(self, deployment) -> None:
        """Track a deployment applied through a change journal.

        Deployment is additive world state, not pass configuration: when a
        journal extends it between surveys (see
        :meth:`repro.topology.changes.ChangeJournal.deploy_dnssec`), the
        pass adopts the extended deployment so its metadata — and therefore
        a delta run's snapshot — matches a cold engine configured with the
        extended fraction from the start.
        """
        self.deployment = deployment
        self.fraction = deployment.fraction_requested

    def make_state(self, worker) -> ChainValidator:
        # Zone verdicts are per-worker memoized: the world is signed once in
        # prepare() and never mutated during the survey, so names sharing a
        # TLD/SLD revalidate only their leaf answer.  The validator rides
        # the worker's own resolver: every name it validates was just
        # discovered through it, so the zone-cut walk is a pure cache hit.
        return ChainValidator(worker.resolver, seed=self.seed,
                              cache_zones=True)

    def analyze(self, ctx: PassContext, state: ChainValidator
                ) -> Dict[str, object]:
        validation = state.validate(ctx.view.target)
        hijackable = ctx.builtin.get("classification") in \
            HIJACKABLE_CLASSIFICATIONS
        return {
            "dnssec_status": validation.status,
            "dnssec_detected": bool(hijackable and validation.is_secure),
        }

    def spec(self) -> str:
        if ";" in self.seed or self.seed != self.seed.strip():
            raise ValueError(
                f"dnssec seed {self.seed!r} cannot be spec-encoded")
        return (f"dnssec:fraction={self.fraction!r}"
                f";sign_tlds={'true' if self.sign_tlds else 'false'}"
                f";seed={self.seed}")

    @classmethod
    def from_options(cls, options: Dict[str, str]) -> "DNSSECImpactPass":
        known = {"fraction": float, "sign_tlds": _parse_bool, "seed": str}
        kwargs = {}
        for key, text in options.items():
            if key not in known:
                raise ValueError(f"unknown dnssec option {key!r} "
                                 f"(expected one of {sorted(known)})")
            kwargs[key] = known[key](text)
        return cls(**kwargs)


class ValueRankingPass(AnalysisPass):
    """Nameserver value ranking (Figures 8-9) as an engine-scale reduce.

    The post-hoc path (:meth:`repro.core.survey.SurveyResults.value_analyzer`)
    re-walks every record's TCB after the survey.  As a pass, the per-server
    counts already accumulated by the :class:`~repro.core.engine.SurveyAggregator`
    during streaming aggregation are reduced once in :meth:`finalize` — no
    second walk, no per-name work (``analyze`` contributes no columns), and
    the result is identical on every backend because the aggregator's state
    is merged deterministically.

    Metadata keys: ``value_summary`` (the headline Figure 8/9 statistics)
    and ``value_top_servers`` (the ``top`` highest-leverage servers with
    their name counts and vulnerability flags).
    """

    name = "value"
    columns: Tuple[str, ...] = ()

    def __init__(self, top: int = 10,
                 high_leverage_fraction: float = 0.10):
        if top < 0:
            raise ValueError("top must be >= 0")
        if not 0.0 <= high_leverage_fraction <= 1.0:
            raise ValueError("high_leverage_fraction must be within [0, 1]")
        self.top = top
        self.high_leverage_fraction = high_leverage_fraction

    def analyze(self, ctx: PassContext, state: object) -> Dict[str, object]:
        return {}

    def finalize(self, aggregator) -> Dict[str, object]:
        from repro.core.value import NameserverValueAnalyzer
        analyzer = NameserverValueAnalyzer.from_counts(
            aggregator.server_counts(), aggregator.resolved_count,
            aggregator.vulnerability_flags())
        summary = {key: round(value, 6) for key, value in
                   analyzer.summary(self.high_leverage_fraction).items()}
        top_servers = [value.to_dict()
                       for value in analyzer.ranking()[:self.top]]
        return {"value_summary": summary, "value_top_servers": top_servers}

    def spec(self) -> str:
        return (f"value:top={self.top}"
                f";high_leverage_fraction={self.high_leverage_fraction!r}")

    @classmethod
    def from_options(cls, options: Dict[str, str]) -> "ValueRankingPass":
        known = {"top": int, "high_leverage_fraction": float}
        kwargs = {}
        for key, text in options.items():
            if key not in known:
                raise ValueError(f"unknown value option {key!r} "
                                 f"(expected one of {sorted(known)})")
            kwargs[key] = known[key](text)
        return cls(**kwargs)


#: Registry of spec-name -> pass class used by :func:`build_passes`.
PASS_REGISTRY: Dict[str, type] = {
    AvailabilityPass.name: AvailabilityPass,
    DNSSECImpactPass.name: DNSSECImpactPass,
    ValueRankingPass.name: ValueRankingPass,
}

PassSpec = Union[str, AnalysisPass]


def build_pass(spec: PassSpec) -> AnalysisPass:
    """Resolve one pass spec: an instance, or ``name[:key=val[;key=val]]``."""
    if isinstance(spec, AnalysisPass):
        return spec
    text = spec.strip()
    name, _, option_text = text.partition(":")
    name = name.strip()
    cls = PASS_REGISTRY.get(name)
    if cls is None:
        raise ValueError(f"unknown analysis pass: {name!r} "
                         f"(expected one of {sorted(PASS_REGISTRY)})")
    options: Dict[str, str] = {}
    if option_text:
        for item in option_text.split(";"):
            item = item.strip()
            if not item:
                continue
            key, separator, value = item.partition("=")
            if not separator:
                raise ValueError(f"malformed option {item!r} in pass spec "
                                 f"{text!r} (expected key=value)")
            options[key.strip()] = value.strip()
    return cls.from_options(options)


def build_passes(specs: Union[str, Iterable[PassSpec], None]
                 ) -> Tuple[AnalysisPass, ...]:
    """Resolve a pass configuration into validated pass instances.

    Accepts ``None`` (no passes), a comma-separated spec string (the CLI
    form), or an iterable of spec strings / instances.  Checks name and
    column uniqueness across the resolved passes.
    """
    if specs is None:
        return ()
    if isinstance(specs, str):
        specs = [item for item in specs.split(",") if item.strip()]
    passes = tuple(build_pass(spec) for spec in specs)
    seen_names = set()
    seen_columns: Dict[str, str] = {}
    for pass_ in passes:
        if pass_.name in seen_names:
            raise ValueError(f"duplicate analysis pass: {pass_.name!r}")
        seen_names.add(pass_.name)
        for column in pass_.columns:
            owner = seen_columns.get(column)
            if owner is not None:
                raise ValueError(f"column {column!r} contributed by both "
                                 f"{owner!r} and {pass_.name!r}")
            seen_columns[column] = pass_.name
    return passes
