"""Persistence of survey results as JSON snapshots.

The paper kept an active web site with the raw results of its July 2004
snapshot.  :func:`save_results` / :func:`load_results` play the same role for
this reproduction: they serialise a :class:`~repro.core.survey.SurveyResults`
to a self-describing JSON document (and back) so that expensive surveys can
be archived, diffed across generator configurations, and re-analysed without
re-running resolution.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.dns.name import DomainName
from repro.core.survey import NameRecord, SurveyResults
from repro.vulns.bindversion import BindVersion
from repro.vulns.fingerprint import FingerprintResult

#: Format version written into every snapshot for forwards compatibility.
SNAPSHOT_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def results_to_dict(results: SurveyResults) -> Dict[str, object]:
    """Convert survey results to a JSON-serialisable dictionary."""
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "metadata": dict(results.metadata),
        "records": [record.to_dict() for record in results.records],
        "server_names_controlled": {
            str(host): count
            for host, count in results.server_names_controlled.items()},
        "vulnerable_servers": sorted(str(host)
                                     for host in results.vulnerable_servers),
        "compromisable_servers": sorted(
            str(host) for host in results.compromisable_servers),
        "popular_names": sorted(str(name) for name in results.popular_names),
        "fingerprints": {
            str(host): {
                "banner": result.banner,
                "reachable": result.reachable,
                "vulnerabilities": list(result.vulnerabilities),
            }
            for host, result in results.fingerprints.items()},
    }


def results_from_dict(payload: Dict[str, object]) -> SurveyResults:
    """Rebuild survey results from a dictionary produced by
    :func:`results_to_dict`."""
    version = payload.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version: {version!r}")

    records = []
    for raw in payload.get("records", []):
        records.append(NameRecord(
            name=DomainName(raw["name"]),
            tld=raw["tld"],
            category=raw["category"],
            is_popular=bool(raw["is_popular"]),
            resolved=bool(raw["resolved"]),
            tcb_size=int(raw["tcb_size"]),
            in_bailiwick=int(raw["in_bailiwick"]),
            vulnerable_in_tcb=int(raw["vulnerable_in_tcb"]),
            compromisable_in_tcb=int(raw["compromisable_in_tcb"]),
            safety_percentage=float(raw["safety_percentage"]),
            mincut_size=int(raw["mincut_size"]),
            mincut_safe=int(raw["mincut_safe"]),
            mincut_vulnerable=int(raw["mincut_vulnerable"]),
            classification=raw["classification"],
            tcb_servers={DomainName(s) for s in raw.get("tcb_servers", [])},
            mincut_servers={DomainName(s)
                            for s in raw.get("mincut_servers", [])},
        ))

    fingerprints = {}
    for host_text, raw in payload.get("fingerprints", {}).items():
        hostname = DomainName(host_text)
        banner = raw.get("banner")
        fingerprints[hostname] = FingerprintResult(
            hostname=hostname, banner=banner,
            version=BindVersion.parse(banner),
            reachable=bool(raw.get("reachable", True)),
            vulnerabilities=list(raw.get("vulnerabilities", [])))

    return SurveyResults(
        records=records,
        server_names_controlled={
            DomainName(host): int(count)
            for host, count in payload.get("server_names_controlled",
                                           {}).items()},
        vulnerable_servers={DomainName(host)
                            for host in payload.get("vulnerable_servers", [])},
        compromisable_servers={
            DomainName(host)
            for host in payload.get("compromisable_servers", [])},
        fingerprints=fingerprints,
        popular_names={DomainName(name)
                       for name in payload.get("popular_names", [])},
        metadata=dict(payload.get("metadata", {})),
    )


def save_results(results: SurveyResults, path: PathLike,
                 indent: int = 0) -> pathlib.Path:
    """Write survey results to ``path`` as JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = results_to_dict(results)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent or None, sort_keys=True)
    return path


def load_results(path: PathLike) -> SurveyResults:
    """Read survey results previously written by :func:`save_results`."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return results_from_dict(payload)
