"""Tests for :mod:`repro.dns.zonefile`."""

import pytest

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName
from repro.dns.rdtypes import RRType
from repro.dns.zone import Zone
from repro.dns.zonefile import (
    ZoneFileParser,
    load_zone_file,
    write_zone_file,
    zone_to_text,
)

SAMPLE = """\
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1.example.com. hostmaster.example.com. 2004072201 7200 3600 1209600 3600
@   IN NS  ns1
@   IN NS  ns2.offsite.net.
ns1 IN A   10.0.0.53
www 600 IN A 10.0.0.80
    IN A 10.0.0.81
mail IN MX 10 mx1.example.com.
mx1  IN A  10.0.0.25
alias IN CNAME www
info IN TXT "hello world ; not a comment"
; a delegated child with glue
sub      IN NS ns1.sub
sub      IN NS ns9.elsewhere.org.
ns1.sub  IN A  10.1.0.53
"""


def test_parse_sample_zone_records():
    zone = ZoneFileParser().parse(SAMPLE)
    assert zone.apex == DomainName("example.com")
    assert zone.soa is not None and zone.soa.serial == 2004072201
    assert [str(ns) for ns in zone.apex_nameservers()] == [
        "ns1.example.com", "ns2.offsite.net"]
    www = zone.get_rrset("www.example.com", RRType.A)
    assert sorted(www.addresses()) == ["10.0.0.80", "10.0.0.81"]
    assert www.ttl == 600
    mx = zone.get_rrset("mail.example.com", RRType.MX).records[0].rdata
    assert mx.preference == 10
    assert mx.exchange == DomainName("mx1.example.com")
    cname = zone.get_rrset("alias.example.com", RRType.CNAME)
    assert cname.targets() == [DomainName("www.example.com")]
    txt = zone.get_rrset("info.example.com", RRType.TXT).records[0]
    assert str(txt.rdata) == "hello world ; not a comment"


def test_parse_reconstructs_delegation_and_glue():
    zone = ZoneFileParser().parse(SAMPLE)
    delegation = zone.get_delegation("sub.example.com")
    assert delegation is not None
    assert [str(ns) for ns in delegation.nameservers] == [
        "ns1.sub.example.com", "ns9.elsewhere.org"]
    assert delegation.glue[DomainName("ns1.sub.example.com")] == ["10.1.0.53"]
    # Glue is not authoritative zone data.
    assert not zone.is_authoritative_for("ns1.sub.example.com")


def test_parse_relative_and_at_names():
    text = ("$ORIGIN test.org.\n"
            "@ IN SOA ns.test.org. admin.test.org. 1 2 3 4 5\n"
            "@ IN NS ns\n"
            "ns IN A 10.0.0.1\n")
    zone = ZoneFileParser().parse(text)
    assert zone.apex_nameservers() == [DomainName("ns.test.org")]


def test_parse_requires_origin():
    with pytest.raises(ZoneError):
        ZoneFileParser().parse("@ IN NS ns1.example.com.\n")
    zone = ZoneFileParser().parse("@ IN NS ns1.example.com.\n",
                                  origin="example.com")
    assert zone.apex == DomainName("example.com")


def test_parse_rejects_bad_records():
    with pytest.raises(ZoneError):
        ZoneFileParser().parse("$ORIGIN x.org.\n@ IN BOGUS data\n")
    with pytest.raises(ZoneError):
        ZoneFileParser().parse("$ORIGIN x.org.\n@ IN SOA too few\n")
    with pytest.raises(ZoneError):
        ZoneFileParser().parse("$ORIGIN x.org.\n@ IN\n")
    with pytest.raises(ZoneError):
        ZoneFileParser().parse("$ORIGIN x.org.\n  IN A 10.0.0.1\n")


def test_roundtrip_through_text():
    original = ZoneFileParser().parse(SAMPLE)
    text = zone_to_text(original)
    recovered = ZoneFileParser().parse(text)
    assert recovered.apex == original.apex
    assert recovered.apex_nameservers() == original.apex_nameservers()
    assert recovered.get_rrset("www.example.com", RRType.A).addresses() == \
        original.get_rrset("www.example.com", RRType.A).addresses()
    delegation = recovered.get_delegation("sub.example.com")
    assert delegation is not None
    assert delegation.glue[DomainName("ns1.sub.example.com")] == ["10.1.0.53"]


def test_roundtrip_generated_zone(small_internet, tmp_path):
    """Zones built by the topology generator survive a file round trip."""
    zone = small_internet.zone("com")
    path = write_zone_file(zone, tmp_path / "com.zone")
    recovered = load_zone_file(path)
    assert recovered.apex == zone.apex
    assert set(map(str, recovered.apex_nameservers())) == \
        set(map(str, zone.apex_nameservers()))
    assert recovered.delegation_count() == zone.delegation_count()
    sample_child = next(iter(zone.iter_delegations())).child
    assert recovered.get_delegation(sample_child) is not None


def test_write_zone_file_creates_directories(tmp_path):
    zone = Zone("write-test.org")
    zone.set_apex_nameservers(["ns1.write-test.org"])
    zone.add("ns1.write-test.org", RRType.A, "10.0.0.1")
    path = write_zone_file(zone, tmp_path / "deep" / "dir" / "zone.db")
    assert path.exists()
    content = path.read_text()
    assert "$ORIGIN write-test.org." in content
    assert "SOA" in content.splitlines()[2]
