"""The staged survey engine: discovery, closure, fingerprinting, analysis.

:class:`SurveyEngine` is the scalable successor of the original per-name
``Survey`` loop.  It decomposes the measurement pipeline into four explicit
stages with shared, reusable state:

1. **discovery** — walk a name's delegation chains through the iterative
   resolver, growing the shared universe graph (chains are cached, hosts are
   expanded once survey-wide);
2. **closure** — read the name's trusted computing base from the builder's
   memoized :class:`~repro.core.delegation.ClosureIndex` as a zero-copy
   :class:`~repro.core.delegation.TCBView` (no ``nx.descendants``, no
   subgraph copies);
3. **fingerprinting** — ``version.bind`` every newly discovered TCB member
   exactly once, folding the verdicts into shared vulnerability maps;
4. **analysis** — TCB report, bottleneck (min-cut) with a cross-name shared
   memo, and hijack classification, plus any configured
   :class:`~repro.core.passes.AnalysisPass` (availability, DNSSEC impact,
   ...), emitted as a :class:`~repro.core.survey.NameRecord` whose
   ``extras`` carry the pass columns.

Records stream into a :class:`SurveyAggregator`, which folds per-name
results incrementally (no intermediate per-name graphs are retained) and
finally assembles a :class:`~repro.core.survey.SurveyResults`.

Execution backends
------------------

``serial``
    One worker context, names processed in directory order.  This is the
    reference backend: every other backend must produce identical results.
``thread``
    The directory is striped over ``workers`` shards, each with its own
    resolver (cloned cache), builder, fingerprinter, and analysis memos, and
    the shards run concurrently on a thread pool.
``sharded``
    Same partitioning, but shards run sequentially — a deterministic batch
    mode that bounds per-shard memory and mirrors how a multi-process or
    multi-host deployment would split the directory.
``process``
    Same partitioning, shards run in forked child processes — true
    parallelism with no GIL contention.  Worker contexts are constructed
    *inside* each child; only shard outputs (records by directory index,
    fingerprints, vulnerability maps) return over the pipe.  Requires an OS
    with the ``fork`` start method (the synthetic Internet is shared by
    inheritance, not by pickling).

Shard outputs (universes, chain caches, fingerprint maps, vulnerability
maps) are merged back deterministically in shard order, and records are
reassembled in directory order, so **the same seed yields byte-identical
results on every backend** (query answers are time-independent, so thread
interleaving cannot change them; only the netsim transport accounting —
simulated clock and query counters — is interleaving-ordered).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dns.name import DomainName, NameLike
from repro.core.delegation import (
    DelegationGraphBuilder,
    NodeKey,
    TCBView,
    name_node,
)
from repro.core.delta import DeltaOutcome, DeltaStats, DirtyIndex
from repro.core.mincut import BottleneckAnalyzer
from repro.core.passes import AnalysisPass, PassContext, build_passes
from repro.core.survey import NameRecord, SurveyResults
from repro.core.tcb import compute_tcb_report
from repro.vulns.database import VulnerabilityDatabase, default_database
from repro.vulns.fingerprint import Fingerprinter, FingerprintResult
from repro.topology.webdirectory import DirectoryEntry

#: Execution backends understood by the engine.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "sharded", "process",
                             "socket")

ProgressCallback = Callable[[int, int], None]


@dataclasses.dataclass
class EngineConfig:
    """Tuning knobs for a :class:`SurveyEngine` run."""

    backend: str = "serial"
    workers: int = 1
    shard_count: Optional[int] = None
    popular_count: int = 500
    include_bottleneck: bool = True
    use_glue: bool = True
    #: Analysis passes: spec strings or AnalysisPass instances (resolved by
    #: the engine via :func:`repro.core.passes.build_passes`).
    passes: Sequence = ()
    #: Socket backend: ``host:port`` of each `repro-dns worker` to drive.
    worker_addrs: Tuple[str, ...] = ()
    #: Socket backend: per-worker TCP connect timeout (seconds).
    connect_timeout: float = 10.0
    #: Socket backend: per-frame response timeout (seconds).  Bounds every
    #: read, so a hung worker surfaces as a precise error, never a stall.
    response_timeout: float = 600.0
    #: Socket backend: separate timeout for BUILD exchanges (world
    #: regeneration is slow); None means use ``response_timeout``.
    build_timeout: Optional[float] = None
    #: Socket backend: per-incident retry budget.  0 (the default) keeps
    #: the strict abort-on-any-failure behaviour; >0 enables
    #: reconnect-and-rebuild recovery and shard reassignment.
    retries: int = 0
    #: Socket backend: base backoff (seconds) between retries; doubles
    #: per attempt with seed-deterministic jitter.
    retry_backoff: float = 0.25
    #: Socket backend: abort once fewer than this many workers survive.
    min_workers: int = 1
    #: Socket backend: shared secret for the HELLO auth handshake (None
    #: disables auth; falls back to $REPRO_AUTH_TOKEN in the CLI layer).
    auth_token: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend: {self.backend!r} "
                             f"(expected one of {BACKENDS})")
        if self.backend == "process" and \
                "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the process backend requires the fork start method "
                "(the synthetic Internet is shared by inheritance); "
                "use thread or sharded on this platform")
        if self.backend == "socket" and not self.worker_addrs:
            raise ValueError("the socket backend needs worker_addrs "
                             "(host:port of each repro-dns worker)")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_count is not None and self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.backend == "socket" and self.worker_addrs and \
                self.min_workers > len(self.worker_addrs):
            raise ValueError(
                f"min_workers ({self.min_workers}) exceeds the "
                f"{len(self.worker_addrs)} configured workers")

    def effective_shards(self) -> int:
        """How many shards a partitioned backend should use."""
        if self.backend == "socket":
            return len(self.worker_addrs)
        if self.shard_count is not None:
            return self.shard_count
        return max(self.workers, 1)


class WorkerContext:
    """Per-shard execution state: resolver, builder, fingerprinter, memos.

    The serial backend uses a single context; the partitioned backends give
    every shard its own so no mutable state crosses shard boundaries.  The
    bottleneck memo is registered as a companion of the builder's closure
    index, so universe growth invalidates both in one pass.
    """

    def __init__(self, internet, database: VulnerabilityDatabase, resolver,
                 passes: Tuple[AnalysisPass, ...] = ()):
        self.internet = internet
        self.resolver = resolver
        self.builder = DelegationGraphBuilder(resolver)
        self.fingerprinter = Fingerprinter(internet.network, database)
        self.database = database
        self.vulnerability_map: Dict[DomainName, bool] = {}
        self.compromisable_map: Dict[DomainName, bool] = {}
        self.mincut_memo: Dict[NodeKey, object] = {}
        self.builder.closures.register_companion(self.mincut_memo)
        # Nothing in the universe points back at a name node, so every
        # name-independent analysis output (TCB report counts, bailiwick,
        # bottleneck, classification) is a pure function of the name's
        # ordered direct-zone chain given a fixed universe: names sharing an
        # SLD chain share the whole analysis.  Keyed on the closure-index
        # version so any structural invalidation clears it.
        self.analysis_by_chain: Dict[Tuple[NodeKey, ...],
                                     Dict[str, object]] = {}
        self.analysis_by_chain_version = self.builder.closures.version
        # The analyzer reads the live (growing) compromisable map: every TCB
        # member is fingerprinted before its name is analysed, and a host's
        # flag never changes once set, so this matches per-name snapshots.
        self.analyzer = BottleneckAnalyzer(vulnerability_aware=True,
                                           shared_memo=self.mincut_memo)
        self.analyzer.vulnerability_map = self.compromisable_map
        # Per-worker pass state (validators, shared memos); passes register
        # their memos as closure companions through register_companion, so
        # universe growth invalidates them with everything else.
        self.passes = tuple(passes)
        self.pass_states = {pass_.name: pass_.make_state(self)
                            for pass_ in self.passes}

    def register_companion(self, memo) -> None:
        """Purge ``memo`` alongside the closure index on invalidation."""
        self.builder.closures.register_companion(memo)

    def chain_analysis_cache(self, version: int
                             ) -> Dict[Tuple[NodeKey, ...], Dict[str, object]]:
        """The per-chain analysis cache, cleared if the universe changed."""
        if self.analysis_by_chain_version != version:
            self.analysis_by_chain.clear()
            self.analysis_by_chain_version = version
        return self.analysis_by_chain

    def fingerprint(self, hostname: DomainName) -> None:
        """Fingerprint one server and keep the vulnerability maps current."""
        if hostname in self.vulnerability_map:
            return
        result = self.fingerprinter.fingerprint(hostname)
        self.vulnerability_map[hostname] = result.is_vulnerable
        self.compromisable_map[hostname] = self.database.is_compromisable(
            result.banner)


class SurveyAggregator:
    """Streams per-name records into aggregate survey state.

    Thread-safe: the partitioned backends fold records from several shards
    concurrently.  Records are keyed by their directory index so the final
    record list is in directory order regardless of completion order.
    """

    def __init__(self, total: int,
                 progress: Optional[ProgressCallback] = None):
        self._records: Dict[int, NameRecord] = {}
        self._counts: Dict[DomainName, int] = {}
        self._fingerprints: Dict[DomainName, FingerprintResult] = {}
        self._vulnerability_map: Dict[DomainName, bool] = {}
        self._compromisable_map: Dict[DomainName, bool] = {}
        self._total = total
        self._progress = progress
        self._lock = threading.Lock()
        self.completed = 0
        self.resolved_count = 0

    def add_record(self, index: int, record: NameRecord) -> None:
        """Fold one name's record into the aggregate state."""
        with self._lock:
            self._records[index] = record
            if record.resolved:
                self.resolved_count += 1
                counts = self._counts
                for host in record.tcb_servers:
                    counts[host] = counts.get(host, 0) + 1
            self.completed += 1
            done = self.completed
        if self._progress is not None:
            self._progress(done, self._total)

    # -- accessors for pass finalizers ---------------------------------------------

    def server_counts(self) -> Dict[DomainName, int]:
        """Per-server "appears in this many resolved TCBs" counts (a copy)."""
        with self._lock:
            return dict(self._counts)

    def vulnerability_flags(self) -> Dict[DomainName, bool]:
        """Per-host vulnerability flags merged from every shard (a copy)."""
        with self._lock:
            return dict(self._vulnerability_map)

    def indexed_records(self) -> List[Tuple[int, NameRecord]]:
        """(directory index, record) pairs in index order (a copy)."""
        with self._lock:
            return sorted(self._records.items())

    def shard_maps(self) -> Tuple[Dict[DomainName, FingerprintResult],
                                  Dict[DomainName, bool],
                                  Dict[DomainName, bool]]:
        """Copies of the merged fingerprint/vulnerability/compromisable maps."""
        with self._lock:
            return (dict(self._fingerprints),
                    dict(self._vulnerability_map),
                    dict(self._compromisable_map))

    def merge_context(self, context: WorkerContext) -> None:
        """Adopt a worker context's fingerprints and vulnerability maps."""
        self.merge_maps(context.fingerprinter.results(),
                        context.vulnerability_map,
                        context.compromisable_map)

    def merge_maps(self, fingerprints: Dict[DomainName, FingerprintResult],
                   vulnerability_map: Dict[DomainName, bool],
                   compromisable_map: Dict[DomainName, bool]) -> None:
        """Adopt already-extracted shard maps (the process backend's path)."""
        with self._lock:
            self._fingerprints.update(fingerprints)
            self._vulnerability_map.update(vulnerability_map)
            self._compromisable_map.update(compromisable_map)

    def tcb_host_union(self) -> Set[DomainName]:
        """Every host appearing in at least one aggregated record's TCB.

        This is exactly the set of hosts a cold survey fingerprints (stage
        3 probes TCB members and nothing else), which makes it the pruning
        domain for server maps carried across an incremental re-survey.
        """
        with self._lock:
            union: Set[DomainName] = set()
            for record in self._records.values():
                union.update(record.tcb_servers)
            return union

    def restrict_hosts(self, hosts: Set[DomainName]) -> None:
        """Drop fingerprint / vulnerability entries outside ``hosts``."""
        with self._lock:
            for mapping in (self._fingerprints, self._vulnerability_map,
                            self._compromisable_map):
                for host in [h for h in mapping if h not in hosts]:
                    del mapping[host]

    def results(self, popular: Set[DomainName],
                metadata: Dict[str, object]) -> SurveyResults:
        """Assemble the final :class:`SurveyResults`."""
        records = [self._records[index] for index in sorted(self._records)]
        return SurveyResults(
            records=records,
            server_names_controlled=dict(self._counts),
            vulnerable_servers={host for host, flag
                                in self._vulnerability_map.items() if flag},
            compromisable_servers={host for host, flag
                                   in self._compromisable_map.items() if flag},
            fingerprints=dict(self._fingerprints),
            popular_names=popular,
            metadata=metadata)


class SurveyEngine:
    """Runs the staged measurement pipeline against a synthetic Internet.

    Parameters
    ----------
    internet:
        The :class:`~repro.topology.generator.SyntheticInternet` to survey.
    vulnerability_db:
        Catalogue used to interpret fingerprints; defaults to the standard
        BIND catalogue.
    config:
        Backend selection and survey options (:class:`EngineConfig`).
    """

    def __init__(self, internet,
                 vulnerability_db: Optional[VulnerabilityDatabase] = None,
                 config: Optional[EngineConfig] = None):
        self.internet = internet
        self.database = vulnerability_db or default_database()
        self.config = config or EngineConfig()
        self.config.validate()
        self.passes: Tuple[AnalysisPass, ...] = \
            build_passes(self.config.passes)
        # World setup (e.g. DNSSEC deployment) must precede every worker
        # context — and every process-backend fork — so all backends see
        # the same universe.
        for pass_ in self.passes:
            pass_.prepare(internet)
        self._root = self._make_worker_context(
            internet.make_resolver(use_glue=self.config.use_glue))
        # Socket backend state: the coordinator connects lazily (first
        # dispatch) and the delta path parks each epoch's dirty set here
        # for the work orders.
        self._coordinator = None
        self._dispatch_dirty: Set[DomainName] = set()

    def _ensure_coordinator(self):
        """Connect to (and BUILD) the socket workers on first use."""
        if self._coordinator is None:
            from repro.distrib.coordinator import (RetryPolicy,
                                                   ShardCoordinator)
            generator_config = getattr(self.internet, "config", None)
            policy = RetryPolicy(
                retries=self.config.retries,
                backoff_base=self.config.retry_backoff,
                seed=int(getattr(generator_config, "seed", 0) or 0))
            self._coordinator = ShardCoordinator(
                self, self.config.worker_addrs,
                connect_timeout=self.config.connect_timeout,
                response_timeout=self.config.response_timeout,
                build_timeout=self.config.build_timeout,
                retry_policy=policy,
                min_workers=self.config.min_workers,
                auth_token=self.config.auth_token)
        return self._coordinator

    def close(self) -> None:
        """Release backend resources (shuts socket workers down politely)."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def __enter__(self) -> "SurveyEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _make_worker_context(self, resolver=None) -> WorkerContext:
        """A fresh worker context (shards clone the primary's resolver)."""
        if resolver is None:
            resolver = self._root.resolver.clone()
        return WorkerContext(self.internet, self.database, resolver,
                             passes=self.passes)

    # -- facade-compatible accessors ----------------------------------------------

    @property
    def resolver(self):
        """The primary worker's resolver (shards clone from it)."""
        return self._root.resolver

    @property
    def builder(self) -> DelegationGraphBuilder:
        """The primary worker's delegation-graph builder."""
        return self._root.builder

    @property
    def fingerprinter(self) -> Fingerprinter:
        """The primary worker's fingerprinter."""
        return self._root.fingerprinter

    def vulnerability_maps(self) -> Tuple[Dict[DomainName, bool],
                                          Dict[DomainName, bool]]:
        """Copies of the (vulnerable, compromisable) per-hostname flags."""
        return (dict(self._root.vulnerability_map),
                dict(self._root.compromisable_map))

    # -- name selection -----------------------------------------------------------------

    def _select_entries(self, names: Optional[Iterable[NameLike]],
                        max_names: Optional[int]) -> List[DirectoryEntry]:
        directory = self.internet.directory
        if names is not None:
            selected: List[DirectoryEntry] = []
            for name in names:
                entry = directory.entry(name)
                if entry is None:
                    entry = DirectoryEntry(name=DomainName(name),
                                           tld=DomainName(name).tld or "",
                                           category="adhoc", popularity=1.0)
                selected.append(entry)
            return selected
        entries = directory.entries()
        if max_names is not None and max_names < len(entries):
            entries = entries[:max_names]
        return entries

    # -- main pipeline --------------------------------------------------------------------

    def run(self, names: Optional[Iterable[NameLike]] = None,
            max_names: Optional[int] = None,
            progress: Optional[ProgressCallback] = None) -> SurveyResults:
        """Survey the given names (default: the whole directory)."""
        entries = self._select_entries(names, max_names)
        popular = {entry.name for entry in
                   self.internet.directory.alexa_top(self.config.popular_count)}
        aggregator = SurveyAggregator(total=len(entries), progress=progress)

        self._dispatch(list(enumerate(entries)), popular, aggregator)
        return aggregator.results(
            popular, self._final_metadata(len(entries), aggregator))

    def _dispatch(self, indexed: List[Tuple[int, DirectoryEntry]],
                  popular: Set[DomainName],
                  aggregator: SurveyAggregator) -> None:
        """Survey the indexed entries on the configured backend.

        Shared by :meth:`run` (the whole directory) and :meth:`run_delta`
        (just the dirty subset) so backend selection can never diverge
        between the cold and incremental paths.
        """
        backend = self.config.backend
        if backend == "socket":
            # Even a single socket worker goes over the wire: the point
            # of the backend is *where* the survey runs, not parallelism.
            self._ensure_coordinator().run_shards(
                indexed, popular, aggregator, dirty=self._dispatch_dirty)
        elif backend == "serial" or \
                (backend != "process" and self.config.effective_shards() == 1):
            self._run_shard(self._root, indexed, popular, aggregator)
        else:
            self._run_partitioned(indexed, popular, aggregator, backend)

    def _final_metadata(self, requested: int,
                        aggregator: SurveyAggregator) -> Dict[str, object]:
        """Survey metadata plus pass metadata and finalize() reduces.

        Cross-record reduces run here: every record (and every shard's
        maps) has been folded by now, and the aggregator state is identical
        on all backends — and identical between a cold run and a delta run
        that patched the same records — so finalizer output is too.
        """
        backend = self.config.backend
        metadata = {
            "popular_count": self.config.popular_count,
            "include_bottleneck": self.config.include_bottleneck,
            "names_requested": requested,
            "backend": backend,
            "workers": (len(self.config.worker_addrs)
                        if backend == "socket" else self.config.workers),
            "shards": (1 if backend == "serial"
                       else self.config.effective_shards()),
            "passes": [pass_.name for pass_ in self.passes],
        }
        for pass_ in self.passes:
            metadata.update(pass_.metadata())
        for pass_ in self.passes:
            metadata.update(pass_.finalize(aggregator))
        if backend == "socket" and self._coordinator is not None and \
                self._coordinator.fault_report.any():
            # Only on faulted runs: clean runs keep metadata byte-stable
            # across backends and epochs.
            metadata["fault_report"] = \
                self._coordinator.fault_report.to_dict()
        return metadata

    # -- incremental re-survey ------------------------------------------------------------

    def run_delta(self, previous: SurveyResults, journal,
                  names: Optional[Iterable[NameLike]] = None,
                  max_names: Optional[int] = None,
                  progress: Optional[ProgressCallback] = None,
                  since: int = 0) -> DeltaOutcome:
        """Re-survey only what a journalled world change invalidated.

        ``previous`` is the last full (or delta) result set over this
        engine's Internet — fresh from :meth:`run` or loaded from a JSON
        snapshot; ``journal`` is the :class:`~repro.topology.changes.ChangeJournal`
        whose mutations were applied since (a pre-folded ``ChangeSet`` is
        accepted too).  The journal's footprint is mapped to dirty names
        through the previous TCBs (:class:`~repro.core.delta.DirtyIndex`),
        only those are re-surveyed — on the configured backend, with the
        primary context's closures, splits, chains, and resolver walk
        state surgically invalidated and otherwise carried — and every
        clean record is patched straight from ``previous``.  Pass
        ``finalize`` reduces re-run over the merged aggregate, so
        cross-record metadata (value ranking, dnssec fraction) stays
        exact.

        The contract: the returned results (and their snapshot) are
        byte-identical to a cold ``SurveyEngine(...).run()`` over the
        mutated world with the same configuration.  Delta bookkeeping
        therefore lives in the returned :class:`DeltaStats`, never in the
        results metadata.
        """
        started = time.perf_counter()
        changes = journal.changes(since=since) \
            if hasattr(journal, "changes") else journal
        entries = self._select_entries(names, max_names)
        if self.config.backend == "socket":
            # Workers replay the journal as mutation specs; the
            # coordinator needs the journal itself (sync_journal raises a
            # precise error on a pre-folded ChangeSet).
            self._ensure_coordinator().sync_journal(journal)

        # A journalled deployment extends the signed world; deployment-
        # tracking passes adopt it so their metadata matches a cold engine
        # configured for the extended deployment.
        for deployment in changes.dnssec_deployments:
            for pass_ in self.passes:
                adopt = getattr(pass_, "adopt_deployment", None)
                if adopt is not None:
                    adopt(deployment)

        dirty = set(DirtyIndex(previous).dirty_names(changes))
        dirty_indexed: List[Tuple[int, DirectoryEntry]] = []
        clean_records: List[Tuple[int, NameRecord]] = []
        # Per-entry record_for instead of a records scan: on a lazy
        # (mmap-backed) previous this hydrates exactly the clean records
        # being patched into the output — dirty rows are re-surveyed, so
        # their previous records are never materialised at all.
        for position, entry in enumerate(entries):
            previous_record = None if entry.name in dirty else \
                previous.record_for(entry.name)
            if previous_record is None:
                dirty.add(entry.name)
                dirty_indexed.append((position, entry))
            else:
                clean_records.append((position, previous_record))

        self._invalidate_for_changes(changes, dirty)

        popular = {entry.name for entry in
                   self.internet.directory.alexa_top(self.config.popular_count)}
        aggregator = SurveyAggregator(total=len(entries), progress=progress)
        # Previous-world server maps go in first; shard merges from the
        # re-survey overlay fresher verdicts (dict update, last wins).
        aggregator.merge_maps(
            dict(previous.fingerprints),
            {host: host in previous.vulnerable_servers
             for host in previous.fingerprints},
            {host: host in previous.compromisable_servers
             for host in previous.fingerprints})
        for position, record in clean_records:
            aggregator.add_record(position, record)

        if dirty_indexed:
            # Work orders must carry the epoch's *complete* dirty set: a
            # worker invalidates warm state for every dirty name, not just
            # the ones striped onto it this epoch.
            self._dispatch_dirty = dirty
            try:
                self._dispatch(dirty_indexed, popular, aggregator)
            finally:
                self._dispatch_dirty = set()

        # A cold run fingerprints exactly the TCB members of its records;
        # prune carried entries for hosts nothing depends on any more.
        aggregator.restrict_hosts(aggregator.tcb_host_union())

        results = aggregator.results(
            popular, self._final_metadata(len(entries), aggregator))
        stats = DeltaStats(
            total_names=len(entries), dirty_names=len(dirty_indexed),
            patched_names=len(clean_records), events=len(journal)
            if hasattr(journal, "__len__") else 0,
            edited_zones=len(changes.edited_zones),
            created_zones=len(changes.created_zones),
            touched_hosts=len(changes.touched_hosts),
            dirty_fraction=(len(dirty_indexed) / len(entries))
            if entries else 0.0,
            elapsed_s=time.perf_counter() - started)
        return DeltaOutcome(results=results, stats=stats,
                            dirty=frozenset(dirty))

    def _invalidate_for_changes(self, changes,
                                dirty: Set[DomainName]) -> None:
        """Surgically invalidate the primary context for a world change.

        The builder rewires the warm universe (see
        :meth:`~repro.core.delegation.DelegationGraphBuilder.apply_changes`);
        banner changes additionally retire the affected fingerprint and
        vulnerability verdicts, and any verdict-sensitive memo (mincut
        companions, per-chain analyses, validator zone caches) when
        verdicts or signatures may have changed.  Partitioned backends
        build their shard contexts *after* this, by cloning the
        invalidated primary resolver, so every backend sees the same
        post-change world.
        """
        context = self._root
        context.builder.apply_changes(changes, dirty)
        for host in changes.refingerprint_hosts:
            context.vulnerability_map.pop(host, None)
            context.compromisable_map.pop(host, None)
            context.fingerprinter.forget(host)
        if changes.analyses_stale:
            context.builder.closures.reset_companions()
            context.pass_states = {
                pass_.name: pass_.refresh_state(
                    context.pass_states[pass_.name], context)
                for pass_ in context.passes}

    # -- backends -----------------------------------------------------------------------

    def _run_shard(self, context: WorkerContext,
                   indexed_entries: List[Tuple[int, DirectoryEntry]],
                   popular: Set[DomainName],
                   aggregator: SurveyAggregator) -> None:
        """Survey one shard's entries on one worker context."""
        for index, entry in indexed_entries:
            record = self._survey_entry(context, entry, entry.name in popular)
            aggregator.add_record(index, record)
        aggregator.merge_context(context)

    def _run_partitioned(self, indexed: List[Tuple[int, DirectoryEntry]],
                         popular: Set[DomainName],
                         aggregator: SurveyAggregator,
                         backend: str) -> None:
        """Stripe the indexed entries over shards and run them on ``backend``.

        Entries arrive pre-indexed with their directory positions so the
        delta path can stripe just the dirty subset while records still
        land at their full-directory indices.
        """
        shard_count = min(self.config.effective_shards(), max(len(indexed), 1))
        shards = [indexed[offset::shard_count] for offset in range(shard_count)]
        if backend == "process":
            self._run_process_shards(shards, popular, aggregator)
            return
        contexts = [self._make_worker_context() for _ in shards]
        if backend == "thread":
            with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
                futures = [
                    pool.submit(self._run_shard, context, shard, popular,
                                aggregator)
                    for context, shard in zip(contexts, shards)]
                for future in futures:
                    future.result()
        else:
            for context, shard in zip(contexts, shards):
                self._run_shard(context, shard, popular, aggregator)
        # Deterministic merge in shard order: the primary builder adopts
        # every shard universe so post-run inspection (`engine.builder`)
        # sees the complete dependency graph.
        for context in contexts:
            self._root.builder.absorb(context.builder)
            self._root.fingerprinter.absorb(context.fingerprinter)
            self._root.vulnerability_map.update(context.vulnerability_map)
            self._root.compromisable_map.update(context.compromisable_map)

    def _run_process_shards(self, shards: List[List[Tuple[int,
                                                          DirectoryEntry]]],
                            popular: Set[DomainName],
                            aggregator: SurveyAggregator) -> None:
        """Run shards in forked children; fold their outputs in shard order.

        The engine (and the synthetic Internet it closes over) reaches each
        child by fork inheritance through a module global — nothing about
        the world is pickled.  Each child builds its own
        :class:`WorkerContext` and returns ``(records-by-index,
        fingerprints, vulnerability map, compromisable map)``; the merge is
        the exact shard-order fold the ``sharded`` backend performs, so
        results are byte-identical.  Unlike the in-process backends the
        child universes are not absorbed back into the primary builder
        (shipping whole shard graphs over the pipe would dwarf the survey
        itself), so post-run ``engine.builder`` inspection only sees the
        primary context's discoveries.
        """
        global _FORK_STATE
        context = multiprocessing.get_context("fork")
        processes = min(self.config.workers, len(shards))
        # The lock spans the pool's whole lifetime: _FORK_STATE is a module
        # global read at fork time, so concurrent process-backend surveys in
        # one interpreter must not interleave set/fork/clear.
        with _FORK_LOCK:
            _FORK_STATE = (self, shards, popular)
            try:
                self._consume_process_pool(context, processes, shards,
                                           popular, aggregator)
            finally:
                _FORK_STATE = None

    def _consume_process_pool(self, context, processes: int,
                              shards: List[List[Tuple[int, DirectoryEntry]]],
                              popular: Set[DomainName],
                              aggregator: SurveyAggregator) -> None:
        """Fork the pool and fold shard outputs as they complete, in order.

        Ordered ``imap`` keeps the merge in shard order while letting each
        completed shard fold (and report progress) as soon as every earlier
        shard has: progress is per-shard granular on this backend, not
        per-name.
        """
        with context.Pool(processes=processes) as pool:
            for records, fingerprints, vulnerability_map, \
                    compromisable_map in pool.imap(
                        _process_shard_main, range(len(shards)),
                        chunksize=1):
                for index, record in records:
                    aggregator.add_record(index, record)
                aggregator.merge_maps(fingerprints, vulnerability_map,
                                      compromisable_map)
                self._root.fingerprinter.adopt(fingerprints)
                self._root.vulnerability_map.update(vulnerability_map)
                self._root.compromisable_map.update(compromisable_map)

    # -- stages -------------------------------------------------------------------------

    def _survey_entry(self, context: WorkerContext, entry: DirectoryEntry,
                      is_popular: bool) -> NameRecord:
        """Run one name through discovery, closure, fingerprint, analysis."""
        # Stages 1+2: discovery (chain walking) and memoized closure.
        view = context.builder.tcb_view(entry.name)

        # Names sharing a direct-zone chain share everything but identity:
        # reuse the analysis computed for the first such name.
        cache = context.chain_analysis_cache(context.builder.closures.version)
        key = tuple(view.zones_of(name_node(view.target)))
        analysis = cache.get(key)
        if analysis is None:
            analysis = self._analyze_view(context, view, key)
            cache[key] = analysis

        extras = analysis["extras"]
        uncached = [pass_ for pass_ in context.passes
                    if not pass_.chain_cacheable]
        if uncached:
            extras = dict(extras)
            ctx = PassContext(view=view, chain_key=key, builtin=analysis,
                              worker=context)
            for pass_ in uncached:
                extras.update(
                    pass_.analyze(ctx, context.pass_states[pass_.name]))

        return NameRecord(
            name=entry.name, tld=entry.tld, category=entry.category,
            is_popular=is_popular, resolved=analysis["resolved"],
            tcb_size=analysis["tcb_size"],
            in_bailiwick=analysis["in_bailiwick"],
            vulnerable_in_tcb=analysis["vulnerable_in_tcb"],
            compromisable_in_tcb=analysis["compromisable_in_tcb"],
            safety_percentage=analysis["safety_percentage"],
            mincut_size=analysis["mincut_size"],
            mincut_safe=analysis["mincut_safe"],
            mincut_vulnerable=analysis["mincut_vulnerable"],
            classification=analysis["classification"],
            tcb_servers=set(analysis["tcb_servers"]),
            mincut_servers=set(analysis["mincut_servers"]),
            extras=dict(extras))

    def _analyze_view(self, context: WorkerContext, view: TCBView,
                      chain_key: Tuple[NodeKey, ...]) -> Dict[str, object]:
        """Stages 3+4: fingerprinting and analysis for one delegation chain."""
        tcb = view.tcb_frozen()
        resolved = bool(tcb)

        # Stage 3: fingerprint newly discovered TCB members.
        for hostname in tcb:
            context.fingerprint(hostname)

        # Stage 4: TCB report, bottleneck, classification.
        report = compute_tcb_report(view, context.vulnerability_map,
                                    context.compromisable_map)
        mincut_size = 0
        mincut_safe = 0
        mincut_vulnerable = 0
        mincut_servers: Set[DomainName] = set()
        classification = "safe"
        if resolved and self.config.include_bottleneck:
            bottleneck = context.analyzer.analyze(view)
            if bottleneck.feasible:
                mincut_size = bottleneck.size
                mincut_safe = bottleneck.safe_in_cut
                mincut_vulnerable = bottleneck.vulnerable_in_cut
                mincut_servers = set(bottleneck.cut_servers)
                if bottleneck.fully_vulnerable:
                    classification = "complete"
                elif bottleneck.one_safe_server and mincut_vulnerable > 0:
                    classification = "dos-assisted"
                elif report.vulnerable_count > 0:
                    classification = "partial"
        elif report.vulnerable_count > 0:
            classification = "partial"

        analysis: Dict[str, object] = {
            "resolved": resolved,
            "tcb_size": report.size,
            "in_bailiwick": report.in_bailiwick_count,
            "vulnerable_in_tcb": report.vulnerable_count,
            "compromisable_in_tcb": report.compromisable_count,
            # Canonicalised at birth to the codecs' three decimals:
            # records must survive a snapshot round trip *equal*, or a
            # resumed run comparing fresh records against store-loaded
            # ones sees phantom changes.
            "safety_percentage": round(report.safety_percentage, 3),
            "mincut_size": mincut_size,
            "mincut_safe": mincut_safe,
            "mincut_vulnerable": mincut_vulnerable,
            "classification": classification,
            "tcb_servers": tcb,
            "mincut_servers": mincut_servers,
        }

        # Chain-cacheable passes ride the same per-chain memo as the
        # built-in columns above (their output is a pure function of the
        # chain, which is what chain_cacheable promises).
        extras: Dict[str, object] = {}
        cacheable = [pass_ for pass_ in context.passes
                     if pass_.chain_cacheable]
        if cacheable:
            ctx = PassContext(view=view, chain_key=chain_key,
                              builtin=analysis, worker=context)
            for pass_ in cacheable:
                extras.update(
                    pass_.analyze(ctx, context.pass_states[pass_.name]))
        analysis["extras"] = extras
        return analysis

    # -- process backend fork entry ------------------------------------------------------


#: Fork-inherited state for the process backend: (engine, shards, popular).
_FORK_STATE: Optional[Tuple["SurveyEngine", List[List[Tuple[int,
                                                            DirectoryEntry]]],
                            Set[DomainName]]] = None

#: Serialises process-backend runs within one interpreter (see
#: :meth:`SurveyEngine._run_process_shards`).
_FORK_LOCK = threading.Lock()


def _process_shard_main(shard_index: int):
    """Survey one shard inside a forked child.

    Builds a fresh worker context from the fork-inherited engine (cloned
    resolver cache, own builder/fingerprinter/memos/pass state — exactly
    what the in-process partitioned backends give each shard) and returns
    the shard's outputs by directory index.
    """
    engine, shards, popular = _FORK_STATE
    context = engine._make_worker_context()
    records = []
    for index, entry in shards[shard_index]:
        record = engine._survey_entry(context, entry, entry.name in popular)
        records.append((index, record))
    return (records, context.fingerprinter.results(),
            dict(context.vulnerability_map),
            dict(context.compromisable_map))
