"""Tests for the staged survey engine: backend parity, closures, caching."""

import json
import random

import pytest

from repro.dns.name import DomainName
from repro.core.delegation import (
    ClosureIndex,
    DelegationGraphBuilder,
    NS_KIND,
    name_node,
    ns_node,
    zone_node,
)
from repro.core.graphcore import DependencyUniverse
from repro.core.engine import BACKENDS, EngineConfig, SurveyEngine
from repro.core.mincut import BottleneckAnalyzer
from repro.core.snapshot import load_results, results_to_dict, save_results
from repro.core.survey import Survey
from repro.distrib.coordinator import LocalWorkerFleet
from repro.topology.generator import InternetGenerator


# -- closure index unit behaviour --------------------------------------------------------

def _names(closure):
    return {str(host) for host in closure}


def test_closure_index_simple_chain():
    graph = DependencyUniverse()
    graph.add_edge(name_node("www.a.test"), zone_node("a.test"))
    graph.add_edge(zone_node("a.test"), ns_node("ns1.a.test"))
    graph.add_edge(zone_node("a.test"), ns_node("ns2.a.test"))
    index = ClosureIndex(graph)
    assert _names(index.closure(name_node("www.a.test"))) == \
        {"ns1.a.test", "ns2.a.test"}
    # NS nodes contribute themselves.
    assert _names(index.closure(ns_node("ns1.a.test"))) == {"ns1.a.test"}


def test_closure_index_handles_cycles():
    # Mutual secondaries: a.test served by a host whose zone depends on
    # b.test, which is served by a host whose zone depends on a.test.
    graph = DependencyUniverse()
    graph.add_edge(zone_node("a.test"), ns_node("ns.a.test"))
    graph.add_edge(ns_node("ns.a.test"), zone_node("b.test"))
    graph.add_edge(zone_node("b.test"), ns_node("ns.b.test"))
    graph.add_edge(ns_node("ns.b.test"), zone_node("a.test"))
    index = ClosureIndex(graph)
    closure = index.closure(zone_node("a.test"))
    assert _names(closure) == {"ns.a.test", "ns.b.test"}
    # All members of the cycle share one closure object.
    assert index.closure(zone_node("b.test")) is closure
    assert index.closure(ns_node("ns.a.test")) is closure


def test_closure_index_excludes_suffixes():
    graph = DependencyUniverse()
    graph.add_edge(zone_node("a.test"), ns_node("ns.a.test"))
    graph.add_edge(zone_node("a.test"), ns_node("x.root-servers.net"))
    index = ClosureIndex(graph, (DomainName("root-servers.net"),))
    assert _names(index.closure(zone_node("a.test"))) == {"ns.a.test"}


def test_closure_index_invalidation_recomputes():
    graph = DependencyUniverse()
    graph.add_edge(name_node("www.a.test"), zone_node("a.test"))
    graph.add_edge(zone_node("a.test"), ns_node("ns1.a.test"))
    index = ClosureIndex(graph)
    assert _names(index.closure(name_node("www.a.test"))) == {"ns1.a.test"}
    version = index.version
    graph.add_edge(zone_node("a.test"), ns_node("ns2.a.test"))
    index.invalidate(zone_node("a.test"))
    assert _names(index.closure(name_node("www.a.test"))) == \
        {"ns1.a.test", "ns2.a.test"}
    assert index.version > version


def test_closure_index_unknown_node_is_empty_and_uncached():
    graph = DependencyUniverse()
    index = ClosureIndex(graph)
    assert index.closure(zone_node("ghost.test")) == frozenset()
    assert len(index) == 0


# -- builder closure vs. fresh-reachability ground truth -----------------------------------

def _descendants_tcb(builder, name):
    """Ground-truth TCB computed the pre-engine way (fresh BFS every time)."""
    universe = builder.universe
    source = name_node(name)
    reachable = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for succ in universe.successors(node):
            if succ not in reachable:
                reachable.add(succ)
                frontier.append(succ)
    return {key[1] for key in reachable
            if key[0] == NS_KIND and
            not key[1].is_subdomain_of("root-servers.net")}


def test_tcb_view_matches_descendants_on_mini_internet(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    for name in ("www.example.com", "www.uni.edu", "www.hostco.com"):
        view = builder.tcb_view(name)
        assert view.tcb() == _descendants_tcb(builder, name)
        assert view.tcb_size() == len(view.tcb())
    # Growing the universe must not leave stale closures behind: re-check
    # the first name after the others were discovered.
    fresh = builder.tcb_view("www.example.com")
    assert fresh.tcb() == _descendants_tcb(builder, "www.example.com")


def test_closure_memoization_matches_descendants_on_survey(small_internet,
                                                           small_survey):
    """Regression: memoized closures == fresh reachability on a sample."""
    survey = Survey(small_internet, popular_count=10)
    sample = random.Random(7).sample(small_survey.resolved_records(), 25)
    builder = survey.builder
    for record in sample:
        closure = builder.closure_of(record.name)
        assert set(closure) == _descendants_tcb(builder, record.name)
        assert set(closure) == record.tcb_servers


def test_tcb_view_equivalent_to_delegation_graph(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    for name in ("www.example.com", "www.uni.edu"):
        graph = builder.build(name)
        view = builder.tcb_view(name)
        assert view.tcb() == graph.tcb()
        assert view.tcb_size() == graph.tcb_size()
        assert view.in_bailiwick_servers() == graph.in_bailiwick_servers()
        assert view.direct_zones() == graph.direct_zones()
        assert view.authoritative_zone() == graph.authoritative_zone()
        # The bottleneck analysis sees identical structure through both.
        vuln = {host: "partner" in str(host) for host in graph.tcb()}
        from_graph = BottleneckAnalyzer(vuln).analyze(graph)
        from_view = BottleneckAnalyzer(vuln).analyze(view)
        assert from_view.cut_servers == from_graph.cut_servers
        assert from_view.safe_in_cut == from_graph.safe_in_cut


# -- backend parity -----------------------------------------------------------------------

def _strip_metadata(results):
    payload = results_to_dict(results)
    payload.pop("metadata")
    return json.dumps(payload, sort_keys=True)


def test_backends_produce_identical_results(small_internet):
    # A private same-config world: the socket workers regenerate the world
    # from its GeneratorConfig, so the in-process copy they are compared
    # against must be pristine, not mutated by earlier tests.
    internet = InternetGenerator(small_internet.config).generate()
    outputs = {}
    with LocalWorkerFleet(2) as fleet:
        for backend in BACKENDS:
            addrs = fleet.addresses if backend == "socket" else ()
            survey = Survey(internet, popular_count=20, backend=backend,
                            workers=3, worker_addrs=addrs)
            try:
                outputs[backend] = survey.run(max_names=90)
            finally:
                survey.close()
    serial = outputs["serial"]
    for backend in BACKENDS[1:]:
        assert outputs[backend].headline() == serial.headline()
        assert _strip_metadata(outputs[backend]) == _strip_metadata(serial)
        assert outputs[backend].metadata["backend"] == backend


def test_backends_produce_identical_pass_columns(small_internet):
    """Determinism matrix with analysis passes: same seed => byte-identical
    SurveyResults (availability / Monte-Carlo / DNSSEC columns included) on
    every backend."""
    # A private same-config world: the DNSSEC pass signs zones in place and
    # must not mutate the session-scoped small_internet other tests observe
    # (and the socket workers regenerate from the config regardless).
    internet = InternetGenerator(small_internet.config).generate()
    outputs = {}
    with LocalWorkerFleet(2) as fleet:
        for backend in BACKENDS:
            addrs = fleet.addresses if backend == "socket" else ()
            survey = Survey(internet, popular_count=20, backend=backend,
                            workers=3, worker_addrs=addrs,
                            passes=("availability:samples=25", "dnssec"))
            try:
                outputs[backend] = survey.run(max_names=80)
            finally:
                survey.close()
    serial = outputs["serial"]
    assert serial.extras_columns() == [
        "availability", "availability_mc", "availability_spof",
        "dnssec_detected", "dnssec_status"]
    for backend in BACKENDS[1:]:
        assert _strip_metadata(outputs[backend]) == _strip_metadata(serial)
        assert outputs[backend].metadata["passes"] == \
            ["availability", "dnssec"]


def test_process_backend_merges_shard_maps(small_internet):
    survey = Survey(small_internet, popular_count=5, backend="process",
                    workers=3)
    results = survey.run(max_names=45)
    vulnerability_map, compromisable_map = survey.engine.vulnerability_maps()
    discovered = {host for record in results.resolved_records()
                  for host in record.tcb_servers}
    assert discovered
    assert discovered <= set(vulnerability_map)
    assert discovered <= set(compromisable_map)
    assert set(results.fingerprints) >= discovered


def test_process_backend_progress_is_monotonic(small_internet):
    calls = []
    survey = Survey(small_internet, popular_count=5, backend="process",
                    workers=2)
    survey.run(max_names=20,
               progress=lambda done, total: calls.append((done, total)))
    assert [done for done, _ in calls] == list(range(1, 21))
    assert all(total == 20 for _, total in calls)


def test_engine_records_match_fresh_per_name_analysis(small_internet):
    """Every engine record (chain-template cache included) must equal a
    from-scratch per-name computation."""
    from repro.core.tcb import compute_tcb_report

    engine = SurveyEngine(small_internet,
                          config=EngineConfig(popular_count=10))
    results = engine.run(max_names=60)
    vulnerability_map, compromisable_map = engine.vulnerability_maps()
    builder = DelegationGraphBuilder(small_internet.make_resolver())
    for record in results.resolved_records():
        graph = builder.build(record.name)
        assert graph.tcb() == record.tcb_servers
        report = compute_tcb_report(graph, vulnerability_map,
                                    compromisable_map)
        assert report.size == record.tcb_size
        assert report.in_bailiwick_count == record.in_bailiwick
        assert report.vulnerable_count == record.vulnerable_in_tcb
        bottleneck = BottleneckAnalyzer(compromisable_map).analyze(graph)
        assert bottleneck.size == record.mincut_size
        assert bottleneck.safe_in_cut == record.mincut_safe
        assert set(bottleneck.cut_servers) == record.mincut_servers


def test_engine_snapshot_round_trip(small_internet, tmp_path):
    engine = SurveyEngine(small_internet,
                          config=EngineConfig(backend="sharded", workers=2,
                                              popular_count=10))
    results = engine.run(max_names=40)
    path = save_results(results, tmp_path / "engine.json")
    loaded = load_results(path)
    assert loaded.headline() == results.headline()
    assert [r.to_dict() for r in loaded.records] == \
        [r.to_dict() for r in results.records]


def test_thread_backend_progress_is_monotonic(small_internet):
    calls = []
    survey = Survey(small_internet, popular_count=5, backend="thread",
                    workers=3)
    survey.run(max_names=30,
               progress=lambda done, total: calls.append((done, total)))
    assert [done for done, _ in calls] == list(range(1, 31))
    assert all(total == 30 for _, total in calls)


# -- engine configuration ----------------------------------------------------------------

def test_engine_config_rejects_unknown_backend():
    with pytest.raises(ValueError):
        EngineConfig(backend="gpu").validate()
    with pytest.raises(ValueError):
        EngineConfig(workers=0).validate()
    with pytest.raises(ValueError):
        EngineConfig(shard_count=0).validate()


def test_survey_facade_exposes_engine(small_internet):
    survey = Survey(small_internet, popular_count=5)
    assert survey.engine.builder is survey.builder
    assert survey.engine.resolver is survey.resolver
    assert survey.engine.fingerprinter is survey.fingerprinter


def test_sharded_run_merges_universe_into_primary_builder(small_internet):
    survey = Survey(small_internet, popular_count=5, backend="sharded",
                    workers=3)
    results = survey.run(max_names=45)
    discovered = survey.builder.discovered_nameservers()
    for record in results.resolved_records():
        assert record.tcb_servers <= discovered
