"""Tests for :mod:`repro.netsim.network`, latency, and failure injection."""

import random

import pytest

from repro.dns.errors import ServerFailureError
from repro.dns.message import make_query
from repro.dns.name import DomainName
from repro.dns.rdtypes import RCode, RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.netsim.failures import FailureInjector, FailureScenario
from repro.netsim.latency import DEFAULT_RTT_MS, LatencyModel, REGION_RTT_MS
from repro.netsim.network import SimulatedNetwork
from repro.vulns.database import default_database


def build_network():
    network = SimulatedNetwork()
    zone = Zone("example.com")
    zone.set_apex_nameservers(["ns1.example.com"])
    zone.add("www.example.com", RRType.A, "10.0.0.80")
    zone.add("ns1.example.com", RRType.A, "10.0.0.53")
    primary = AuthoritativeServer("ns1.example.com", addresses=["10.0.0.53"],
                                  software="BIND 9.2.3", operator="example",
                                  region="us")
    primary.add_zone(zone)
    secondary = AuthoritativeServer("ns2.example.com", addresses=["10.0.0.54"],
                                    software="BIND 8.2.4", operator="example",
                                    region="eu")
    secondary.add_zone(zone)
    network.register_all([primary, secondary])
    return network, primary, secondary


# -- latency model ---------------------------------------------------------------

def test_latency_symmetric_lookup():
    model = LatencyModel(jitter_fraction=0.0)
    assert model.base_rtt("us", "eu") == model.base_rtt("eu", "us")
    assert model.base_rtt("us", "eu") == REGION_RTT_MS[("us", "eu")]


def test_latency_unknown_pair_uses_default():
    model = LatencyModel(jitter_fraction=0.0)
    assert model.base_rtt("us", "mars") == DEFAULT_RTT_MS


def test_latency_jitter_bounded():
    model = LatencyModel(jitter_fraction=0.2, rng=random.Random(1))
    base = model.base_rtt("us", "eu")
    for _ in range(100):
        sample = model.sample_rtt("us", "eu")
        assert 0.8 * base <= sample <= 1.2 * base


def test_latency_rejects_bad_jitter():
    with pytest.raises(ValueError):
        LatencyModel(jitter_fraction=1.5)


# -- host registry and transport ------------------------------------------------------

def test_find_server_by_name_and_address():
    network, primary, _secondary = build_network()
    assert network.find_server("ns1.example.com") is primary
    assert network.find_server("10.0.0.53") is primary
    assert network.find_server("missing.example.com") is None
    assert network.server_count() == 2


def test_send_query_delivers_and_charges_latency():
    network, _primary, _secondary = build_network()
    response = network.send_query("ns1.example.com",
                                  make_query("www.example.com"))
    assert response.rcode is RCode.NOERROR
    assert network.clock_ms > 0
    assert network.stats.queries_delivered == 1
    assert network.stats.mean_latency_ms > 0


def test_send_query_unknown_host_raises():
    network, _primary, _secondary = build_network()
    with pytest.raises(ServerFailureError):
        network.send_query("203.0.113.1", make_query("www.example.com"))
    assert network.stats.queries_failed == 1


def test_send_query_to_down_server_raises():
    network, primary, _secondary = build_network()
    primary.fail()
    with pytest.raises(ServerFailureError):
        network.send_query("ns1.example.com", make_query("www.example.com"))


def test_clock_advance_and_now():
    network, _primary, _secondary = build_network()
    network.advance_clock(1500.0)
    assert network.now == pytest.approx(1.5)
    with pytest.raises(ValueError):
        network.advance_clock(-1)


def test_region_and_operator_views():
    network, primary, secondary = build_network()
    assert network.servers_in_region("eu") == [secondary]
    assert set(network.servers_for_operator("example")) == {primary, secondary}


def test_vulnerable_servers_view():
    network, _primary, secondary = build_network()
    vulnerable = network.vulnerable_servers(default_database())
    assert vulnerable == [secondary]


# -- failure injection -------------------------------------------------------------------

def test_failure_injector_apply_and_revert():
    network, primary, secondary = build_network()
    injector = FailureInjector(network)
    scenario = FailureScenario(name="take-out-primary",
                               failed_servers={DomainName("ns1.example.com")})
    assert injector.apply(scenario) == 1
    assert not primary.is_up
    assert secondary.is_up
    assert injector.active_scenario is scenario
    assert injector.revert() == 1
    assert primary.is_up
    assert injector.active_scenario is None


def test_failure_injector_region_partition():
    network, primary, secondary = build_network()
    injector = FailureInjector(network)
    scenario = FailureScenario(name="eu-partition",
                               partitioned_regions={"eu"})
    injector.apply(scenario)
    assert primary.is_up
    assert not secondary.is_up
    assert injector.surviving_servers() == [primary]


def test_failure_injector_dos_single_server():
    network, primary, _secondary = build_network()
    injector = FailureInjector(network)
    assert injector.dos("ns1.example.com")
    assert not primary.is_up
    assert not injector.dos("unknown.example.com")
    injector.revert()
    assert primary.is_up


def test_fail_servers_convenience():
    network, primary, secondary = build_network()
    injector = FailureInjector(network)
    scenario = injector.fail_servers(["ns1.example.com", "ns2.example.com"])
    assert not scenario.is_empty()
    assert not primary.is_up and not secondary.is_up


def test_applying_new_scenario_reverts_previous():
    network, primary, secondary = build_network()
    injector = FailureInjector(network)
    injector.fail_servers(["ns1.example.com"], scenario_name="first")
    injector.apply(FailureScenario(
        name="second", failed_servers={DomainName("ns2.example.com")}))
    assert primary.is_up
    assert not secondary.is_up
