"""Tests for :mod:`repro.dns.message`."""

from repro.dns.message import Message, Question, make_query, make_response
from repro.dns.name import DomainName
from repro.dns.rdtypes import RCode, RRClass, RRType
from repro.dns.records import ResourceRecord


def test_question_create_normalises():
    question = Question.create("Example.COM", "ns", "in")
    assert question.name == DomainName("example.com")
    assert question.rtype is RRType.NS
    assert question.rclass is RRClass.IN
    assert "example.com" in str(question)


def test_make_query_assigns_unique_ids():
    first = make_query("a.com")
    second = make_query("b.com")
    assert first.qid != second.qid
    assert not first.is_response


def test_make_response_copies_question_and_id():
    query = make_query("example.com", RRType.A)
    response = make_response(query, authoritative=True)
    assert response.qid == query.qid
    assert response.question == query.question
    assert response.is_response
    assert response.authoritative


def test_referral_detection():
    query = make_query("www.example.com")
    response = make_response(query)
    response.authority.append(
        ResourceRecord.create("example.com", RRType.NS, "ns1.example.com"))
    assert response.is_referral
    # Adding an answer makes it a final answer, not a referral.
    response.answers.append(
        ResourceRecord.create("www.example.com", RRType.A, "10.0.0.1"))
    assert not response.is_referral


def test_nxdomain_is_not_referral():
    query = make_query("missing.example.com")
    response = make_response(query, rcode=RCode.NXDOMAIN)
    response.authority.append(
        ResourceRecord.create("example.com", RRType.NS, "ns1.example.com"))
    assert response.is_nxdomain
    assert not response.is_referral


def test_referral_nameservers_extraction():
    query = make_query("www.example.com")
    response = make_response(query)
    response.authority.append(
        ResourceRecord.create("example.com", RRType.NS, "ns1.example.com"))
    response.authority.append(
        ResourceRecord.create("example.com", RRType.NS, "ns2.example.com"))
    assert response.referral_nameservers() == [
        DomainName("ns1.example.com"), DomainName("ns2.example.com")]


def test_glue_addresses_lookup():
    query = make_query("www.example.com")
    response = make_response(query)
    response.additional.append(
        ResourceRecord.create("ns1.example.com", RRType.A, "10.0.0.53"))
    response.additional.append(
        ResourceRecord.create("ns2.example.com", RRType.A, "10.0.0.54"))
    assert response.glue_addresses("ns1.example.com") == ["10.0.0.53"]
    assert response.glue_addresses("missing.example.com") == []


def test_answer_rrset_filtering():
    query = make_query("www.example.com")
    response = make_response(query)
    cname = ResourceRecord.create("www.example.com", RRType.CNAME,
                                  "host.example.com")
    address = ResourceRecord.create("host.example.com", RRType.A, "10.0.0.1")
    response.answers.extend([cname, address])
    assert response.answer_rrset() == [cname, address]
    assert response.answer_rrset(RRType.A) == [address]


def test_message_str_mentions_kind_and_rcode():
    query = make_query("example.com")
    assert "query" in str(query)
    response = make_response(query, rcode=RCode.REFUSED)
    assert "response" in str(response)
    assert "REFUSED" in str(response)
