"""Planted case-study domains reproducing the paper's anecdotes.

Two concrete examples anchor the paper's argument:

* **fbi.gov** — served by ``dns.sprintip.com`` / ``dns2.sprintip.com``, whose
  own domain ``sprintip.com`` is served by ``reston-ns[123].telemail.net``;
  ``reston-ns2.telemail.net`` ran BIND 8.2.4 with four known exploits
  (libbind, negcache, sigrec, DoS-multi), so compromising that one obscure
  machine lets an attacker hijack the FBI's web presence.
* **www.rkc.lviv.ua** — the most dependent name in the survey, whose TCB
  spans universities and ISPs across a dozen countries because of how the
  ``.ua`` hierarchy delegates.

:class:`AnecdotePlanter` recreates structurally identical domains inside the
synthetic Internet so that the examples and the hijack analysis can walk the
same chains the paper describes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dns.name import DomainName
from repro.topology.operators import Organization, OperatorKind
from repro.topology.webdirectory import DirectoryEntry

#: The BIND release the paper calls out for reston-ns2.telemail.net.
TELEMAIL_VULNERABLE_BANNER = "BIND 8.2.4"

#: Names planted by the default anecdote set.
FBI_WEB_NAME = DomainName("www.fbi.gov")
LVIV_WEB_NAME = DomainName("www.rkc.lviv.ua")


class AnecdotePlanter:
    """Adds the paper's case-study domains to a generated Internet."""

    def __init__(self, generator) -> None:
        self._generator = generator

    # -- public ------------------------------------------------------------------

    def plant(self, internet) -> List[DomainName]:
        """Plant every anecdote supported by the generated TLD set.

        Returns the list of directory names added.
        """
        planted: List[DomainName] = []
        fbi = self.plant_fbi_chain(internet)
        if fbi is not None:
            planted.append(fbi)
        lviv = self.plant_lviv_chain(internet)
        if lviv is not None:
            planted.append(lviv)
        return planted

    # -- fbi.gov -------------------------------------------------------------------

    def plant_fbi_chain(self, internet) -> Optional[DomainName]:
        """Recreate the fbi.gov → sprintip.com → telemail.net chain."""
        gen = self._generator
        if "gov" not in gen._gtld_profiles or "com" not in gen._gtld_profiles \
                or "net" not in gen._gtld_profiles:
            return None

        telemail = Organization(name="telemail", kind=OperatorKind.ISP,
                                domain=DomainName("telemail.net"), region="us",
                                hygiene=0.3)
        gen._orgs.add(telemail)
        telemail_zone = gen._get_zone(telemail.domain)
        telemail_ns = []
        for index in range(1, 4):
            hostname = telemail.domain.child(f"reston-ns{index}")
            server = gen._create_server(hostname, telemail,
                                        home_zone=telemail_zone)
            telemail_ns.append(hostname)
            # The paper's smoking gun: reston-ns2 runs BIND 8.2.4 with four
            # scripted exploits against it; its siblings are patched.
            if index == 2:
                server.software = TELEMAIL_VULNERABLE_BANNER
            else:
                server.software = "BIND 9.2.3"
        gen._publish_zone(telemail, telemail.domain, telemail_ns,
                          parent_apex="net")

        sprintip = Organization(name="sprintip",
                                kind=OperatorKind.HOSTING_PROVIDER,
                                domain=DomainName("sprintip.com"), region="us",
                                hygiene=0.9)
        gen._orgs.add(sprintip)
        sprintip_zone = gen._get_zone(sprintip.domain)
        sprintip_ns = []
        for index in range(1, 3):
            hostname = sprintip.domain.child(f"dns{'' if index == 1 else index}")
            server = gen._create_server(hostname, sprintip,
                                        home_zone=sprintip_zone)
            server.software = "BIND 9.2.3"
            sprintip_ns.append(hostname)
        # sprintip.com's own zone is served by the telemail machines — the
        # indirection that puts telemail.net inside the FBI's TCB.
        gen._publish_zone(sprintip, sprintip.domain, telemail_ns,
                          parent_apex="com")

        fbi = Organization(name="fbi", kind=OperatorKind.GOVERNMENT,
                           domain=DomainName("fbi.gov"), region="us",
                           hygiene=0.9)
        gen._orgs.add(fbi)
        fbi_zone = gen._publish_zone(fbi, fbi.domain, sprintip_ns,
                                     parent_apex="gov")
        gen._add_web_host(fbi_zone, "www", fbi, category="government",
                          popularity=900.0)
        internet.directory.add(DirectoryEntry(
            name=FBI_WEB_NAME, tld="gov", category="government",
            popularity=900.0, source="yahoo"))
        return FBI_WEB_NAME

    # -- www.rkc.lviv.ua ---------------------------------------------------------------

    def plant_lviv_chain(self, internet) -> Optional[DomainName]:
        """Recreate a ``.ua`` name whose TCB spans the globe."""
        gen = self._generator
        if "ua" not in gen._cctld_profiles:
            return None

        lviv = Organization(name="lviv-registry",
                            kind=OperatorKind.CCTLD_REGISTRY,
                            domain=DomainName("lviv.ua"), region="eu",
                            hygiene=0.4)
        gen._orgs.add(lviv)
        lviv_zone = gen._get_zone(lviv.domain)
        lviv_ns: List[DomainName] = []
        for index in range(1, 3):
            hostname = lviv.domain.child(f"ns{index}")
            gen._create_server(hostname, lviv, home_zone=lviv_zone)
            lviv_ns.append(hostname)
        # Recruit secondaries from universities in as many distinct regions
        # as possible, mirroring the Berkeley/NYU/UCLA/Monash spread.
        seen_regions = set()
        for university in gen._universities:
            if university.region in seen_regions or not university.nameservers:
                continue
            seen_regions.add(university.region)
            lviv_ns.append(university.nameservers[0])
            if len(lviv_ns) >= 8:
                break
        gen._publish_zone(lviv, lviv.domain, lviv_ns, parent_apex="ua")

        rkc = Organization(name="rkc-lviv", kind=OperatorKind.SMALL_BUSINESS,
                           domain=DomainName("rkc.lviv.ua"), region="eu",
                           hygiene=0.4)
        gen._orgs.add(rkc)
        rkc_ns = list(lviv_ns[:2])
        if gen._isps:
            local = [isp for isp in gen._isps if isp.domain.tld == "ua"]
            donor = local[0] if local else gen._isps[0]
            rkc_ns.extend(donor.nameservers[:1])
        rkc_zone = gen._publish_zone(rkc, rkc.domain, rkc_ns,
                                     parent_apex=lviv.domain)
        gen._add_web_host(rkc_zone, "www", rkc, category="small-business",
                          popularity=40.0)
        internet.directory.add(DirectoryEntry(
            name=LVIV_WEB_NAME, tld="ua", category="small-business",
            popularity=40.0, source="dmoz"))
        return LVIV_WEB_NAME
