"""Tests for the ``repro-dns`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

#: Tiny generator arguments so each CLI invocation stays fast.
TINY = ["--sld-count", "40", "--directory-names", "60",
        "--universities", "10", "--seed", "11"]


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_survey_defaults():
    parser = build_parser()
    args = parser.parse_args(["survey"])
    assert args.command == "survey"
    assert args.seed == 20040722
    assert args.output is None


def test_survey_command_prints_headline_and_figures(capsys):
    exit_code = main(["survey", "--max-names", "30", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mean_tcb_size" in output
    assert "fraction_completely_hijackable" in output
    assert "Figure 3" in output
    # The ccTLD table (Figure 4) only appears when enough ccTLD names were
    # surveyed, which a tiny --max-names run cannot guarantee.


def test_survey_command_writes_snapshot(tmp_path, capsys):
    snapshot = tmp_path / "snapshot.json"
    exit_code = main(["survey", "--max-names", "25", "--output",
                      str(snapshot), *TINY])
    assert exit_code == 0
    assert snapshot.exists()
    payload = json.loads(snapshot.read_text())
    assert payload["records"]
    assert "snapshot written" in capsys.readouterr().out


def test_report_command_reads_snapshot(tmp_path, capsys):
    snapshot = tmp_path / "snapshot.json"
    main(["survey", "--max-names", "25", "--output", str(snapshot), *TINY])
    capsys.readouterr()
    exit_code = main(["report", str(snapshot)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mean_tcb_size" in output


def test_survey_no_bottleneck_flag(capsys):
    exit_code = main(["survey", "--max-names", "15", "--no-bottleneck", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mean_mincut_size" in output


def test_inspect_known_anecdote(capsys):
    exit_code = main(["inspect", "www.fbi.gov", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "TCB size" in output
    assert "classification" in output


def test_inspect_unknown_name(capsys):
    exit_code = main(["inspect", "www.does-not-exist.zz", *TINY])
    assert exit_code == 1
    assert "could not walk" in capsys.readouterr().out


def test_survey_backend_and_workers_flags(capsys):
    exit_code = main(["survey", "--max-names", "25", "--backend", "thread",
                      "--workers", "2", *TINY])
    assert exit_code == 0
    assert "mean_tcb_size" in capsys.readouterr().out


def test_survey_backends_agree_on_headline(capsys):
    outputs = {}
    for backend in ("serial", "sharded"):
        main(["survey", "--max-names", "30", "--backend", backend,
              "--workers", "3", *TINY])
        outputs[backend] = capsys.readouterr().out
    assert outputs["serial"] == outputs["sharded"]


def test_survey_progress_flag_prints_to_stderr(capsys):
    exit_code = main(["survey", "--max-names", "20", "--progress", *TINY])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "surveyed 20/20 names" in captured.err
    assert "surveyed 20/20 names" not in captured.out


def test_survey_process_backend(capsys):
    exit_code = main(["survey", "--max-names", "25", "--backend", "process",
                      "--workers", "2", *TINY])
    assert exit_code == 0
    assert "mean_tcb_size" in capsys.readouterr().out


def test_survey_passes_flag_prints_pass_summary(capsys):
    exit_code = main(["survey", "--max-names", "25", "--passes",
                      "availability,dnssec:fraction=0.5", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Analysis passes" in output
    assert "availability" in output
    assert "dnssec_status=" in output


def test_diff_command_reports_churn(tmp_path, capsys):
    # Same world surveyed with and without the bottleneck analysis: names
    # align, min-cut sizes and classifications churn.
    base = tmp_path / "base.json"
    other = tmp_path / "other.json"
    main(["survey", "--max-names", "30", "--output", str(base), *TINY])
    main(["survey", "--max-names", "30", "--output", str(other),
          "--no-bottleneck", *TINY])
    capsys.readouterr()
    exit_code = main(["diff", str(base), str(other), "--top", "5"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "snapshot diff" in output
    assert "common" in output
    assert "tcb_size" in output
    assert "mincut_size" in output


def test_diff_command_identical_snapshots(tmp_path, capsys):
    snapshot = tmp_path / "snap.json"
    main(["survey", "--max-names", "20", "--output", str(snapshot), *TINY])
    capsys.readouterr()
    exit_code = main(["diff", str(snapshot), str(snapshot)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "0 changed" in output
