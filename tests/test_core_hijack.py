"""Tests for :mod:`repro.core.hijack`: assessment, attack paths, simulation."""

import random

from repro.dns.name import DomainName
from repro.core.delegation import DelegationGraphBuilder
from repro.core.hijack import HijackAnalyzer, HijackSimulator
from repro.core.survey import Survey
from repro.topology.anecdotes import FBI_WEB_NAME
from repro.vulns.database import default_database
from repro.vulns.fingerprint import Fingerprinter


def vulnerability_map_for(mini_internet, hostnames):
    database = default_database()
    fingerprinter = Fingerprinter(mini_internet.network, database)
    result = {}
    for hostname in hostnames:
        fp = fingerprinter.fingerprint(hostname)
        result[DomainName(hostname)] = database.is_compromisable(fp.banner)
    return result


# -- graph-level assessment ------------------------------------------------------------

def test_assessment_safe_when_no_vulnerabilities(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    assessment = HijackAnalyzer({}).assess(graph)
    assert assessment.classification == "safe"
    assert not assessment.is_hijackable
    assert assessment.attack_path == []


def test_assessment_dos_assisted(mini_internet):
    """One of the two bottleneck servers vulnerable: a DoS on the other one
    completes the hijack (the paper's 'another 10 %' case)."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    vulnerability_map = vulnerability_map_for(
        mini_internet, graph.tcb())
    assessment = HijackAnalyzer(vulnerability_map).assess(graph)
    # ns2.hostco.com runs BIND 8.2.3 (vulnerable); ns1 is clean.
    assert assessment.classification == "dos-assisted"
    assert assessment.vulnerable_in_tcb == 1
    assert assessment.is_hijackable
    assert not assessment.is_completely_hijackable


def test_assessment_complete_when_bottleneck_fully_vulnerable(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    vulnerability_map = {DomainName("ns1.hostco.com"): True,
                         DomainName("ns2.hostco.com"): True}
    assessment = HijackAnalyzer(vulnerability_map).assess(graph)
    assert assessment.classification == "complete"
    assert assessment.is_completely_hijackable
    assert assessment.bottleneck.fully_vulnerable


def test_assessment_partial_for_deep_vulnerability(mini_internet):
    """A vulnerable server deep in the TCB that is not a bottleneck yields a
    partial-hijack classification."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.uni.edu")
    vulnerability_map = {DomainName("dns2.partner.edu"): True}
    assessment = HijackAnalyzer(vulnerability_map).assess(graph)
    assert assessment.classification == "partial"
    assert assessment.vulnerable_in_tcb == 1


def test_attack_path_narrative(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.uni.edu")
    vulnerability_map = {DomainName("dns2.partner.edu"): True}
    path = HijackAnalyzer(vulnerability_map).attack_path(graph)
    assert path
    assert path[0].entity == DomainName("www.uni.edu")
    assert path[-1].entity == DomainName("dns2.partner.edu")
    assert "VULNERABLE" in path[-1].note
    assert any(step.kind == "zone" for step in path)
    assert all(str(step) for step in path)


# -- end-to-end simulation on the mini Internet ---------------------------------------------

def test_simulated_hijack_of_hosted_name(mini_internet):
    simulator = HijackSimulator(
        type("I", (), {"network": mini_internet.network,
                       "make_resolver": mini_internet.make_resolver})())
    compromised = simulator.compromise(
        ["ns1.hostco.com", "ns2.hostco.com"], "www.example.com")
    assert compromised == 2
    outcome = simulator.attempt("www.example.com", trials=10)
    assert outcome.complete
    assert outcome.diversion_rate == 1.0
    simulator.restore()
    outcome_after = simulator.attempt("www.example.com", trials=5)
    assert outcome_after.diverted == 0


def test_partial_hijack_diverts_some_queries(mini_internet):
    simulator = HijackSimulator(
        type("I", (), {"network": mini_internet.network,
                       "make_resolver": mini_internet.make_resolver})())
    simulator.compromise(["ns2.hostco.com"], "www.example.com")
    outcome = simulator.attempt("www.example.com", trials=40,
                                rng=random.Random(3))
    assert 0 < outcome.diverted < outcome.trials


def test_compromise_unknown_server_is_counted_as_zero(mini_internet):
    simulator = HijackSimulator(
        type("I", (), {"network": mini_internet.network,
                       "make_resolver": mini_internet.make_resolver})())
    assert simulator.compromise(["ghost.nowhere.zz"], "www.example.com") == 0


# -- the fbi.gov case study on the generated Internet ----------------------------------------

def test_fbi_attack_assessment_and_execution(small_internet):
    survey = Survey(small_internet, popular_count=10)
    survey.run(names=[FBI_WEB_NAME])
    builder = survey.builder
    graph = builder.build(FBI_WEB_NAME)
    tcb = {str(host) for host in graph.tcb()}
    assert "reston-ns2.telemail.net" in tcb, \
        "fbi.gov must transitively depend on the telemail server"
    vulnerability_map, compromisable_map = survey._vulnerability_maps()
    assessment = HijackAnalyzer(compromisable_map).assess(graph)
    assert assessment.is_hijackable
    assert assessment.vulnerable_in_tcb >= 1
    assert assessment.attack_path, "an attack path must exist"
    # The telemail box is reachable through the dependency structure even if
    # another vulnerable server happens to be closer.
    telemail_path = graph.dependency_path("reston-ns2.telemail.net")
    assert telemail_path
    assert {node[1] for node in telemail_path} >= {
        DomainName("www.fbi.gov"), DomainName("reston-ns2.telemail.net")}

    simulator = HijackSimulator(small_internet)
    simulator.compromise(["reston-ns2.telemail.net"], FBI_WEB_NAME,
                         diverted_names=["dns.sprintip.com",
                                         "dns2.sprintip.com"])
    outcome = simulator.attempt(FBI_WEB_NAME, trials=30,
                                rng=random.Random(11))
    simulator.restore()
    assert outcome.diverted > 0, \
        "compromising the telemail box should divert some fbi.gov lookups"
