"""Delegation graphs: the transitive closure of nameserver dependencies.

Section 2 of the paper defines the delegation graph of a domain name as the
transitive closure of all nameservers that could be involved in its
resolution: the name depends on every zone on its delegation path; each zone
depends on each of its nameservers; and each nameserver's own hostname must
in turn be resolved, which drags in the zones (and nameservers) on *its*
delegation path, and so on.

:class:`DelegationGraphBuilder` discovers this structure by issuing real
queries through an :class:`~repro.dns.resolver.IterativeResolver` — exactly
what the survey did against the live Internet — and accumulates everything it
learns in a shared *universe* graph so that work is never repeated across the
hundreds of thousands of names in a survey.  Two projections of the universe
are offered:

* :meth:`DelegationGraphBuilder.build` materialises a full
  :class:`DelegationGraph` (a copied subgraph) for interactive inspection
  and hijack-path extraction;
* :meth:`DelegationGraphBuilder.tcb_view` returns a zero-copy
  :class:`TCBView` whose TCB comes from a memoized per-node closure index
  (:class:`ClosureIndex`) — the fast path the survey engine uses, which
  never copies a graph and never recomputes a closure that is already
  known.

Graph encoding
--------------

The universe is a :class:`~repro.core.graphcore.DependencyUniverse`: every
``(kind, DomainName)`` node is interned to a dense integer id, every NS node
additionally gets a dense *slot* (its bit position in closure bitsets), and
adjacency is stored insertion-ordered per node with a lazily frozen CSR
snapshot (:meth:`~repro.core.graphcore.DependencyUniverse.csr`).  At the
NodeKey level nodes are ``(kind, DomainName)`` tuples where ``kind`` is
``"name"``, ``"zone"``, or ``"ns"``, and edges point from the dependent
entity to the entity it depends on:

* ``(name, X) -> (zone, Z)`` for every zone ``Z`` on ``X``'s delegation path;
* ``(zone, Z) -> (ns, H)`` for every nameserver ``H`` delegated to serve ``Z``;
* ``(ns, H) -> (zone, Z')`` for every zone ``Z'`` on the delegation path of
  the hostname ``H``.

Closures are bitsets: :meth:`ClosureIndex.closure_mask_id` answers "which
non-excluded nameservers are reachable from here?" as an integer mask whose
bit *s* stands for NS slot *s*.  Masks are materialised back into
:class:`frozenset`\\ s of :class:`~repro.dns.name.DomainName` only at the
record/snapshot boundary (equal masks share one frozenset).  Root servers
(and the root zone) are excluded, matching the paper's accounting.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dns.errors import ResolutionError
from repro.dns.name import DomainName, NameLike
from repro.dns.resolver import IterativeResolver, ZoneCut
from repro.core.graphcore import (
    DependencyUniverse,
    KeyGraph,
    NAME_CODE,
    NS_CODE,
    ZONE_CODE,
)

#: Node kinds used in the delegation graph.
NAME_KIND = "name"
ZONE_KIND = "zone"
NS_KIND = "ns"

NodeKey = Tuple[str, DomainName]

#: Hostname suffixes excluded from TCBs by default (the root servers).
DEFAULT_EXCLUDED_SUFFIXES: Tuple[str, ...] = ("root-servers.net",)


def name_node(name: NameLike) -> NodeKey:
    """Node key for a surveyed domain name."""
    return (NAME_KIND, DomainName(name))


def zone_node(name: NameLike) -> NodeKey:
    """Node key for a zone apex."""
    return (ZONE_KIND, DomainName(name))


def ns_node(name: NameLike) -> NodeKey:
    """Node key for a nameserver hostname."""
    return (NS_KIND, DomainName(name))


class ClosureIndex:
    """Memoized bitset closures over a (possibly cyclic) integer universe.

    For every node the index answers "which non-excluded nameserver hostnames
    are reachable from here?" as an integer bitset over NS slots (and, via
    :meth:`closure`, as a shared :class:`frozenset`).  Closures are computed
    with an iterative Tarjan SCC pass — mutually dependent zones (mutual
    secondaries) collapse into one component sharing one closure — and
    memoized per node id, so surveying name *N+1* only ever explores the
    part of the universe that no earlier name reached.  Unions of bitsets
    are single big-int ORs; nothing in the hot path hashes a
    :class:`DomainName`.

    The builder keeps the memo correct as the universe grows: whenever a node
    that already existed gains a new out-edge, the memo entries of that node
    and of everything that can reach it are dropped (see :meth:`invalidate`).
    Companion memos (e.g. the survey engine's shared bottleneck memo, keyed
    by the same integer node ids) can be registered to be purged on the same
    events.
    """

    def __init__(self, graph: DependencyUniverse,
                 excluded_suffixes: Sequence[DomainName] = ()):
        if not isinstance(graph, DependencyUniverse):
            raise TypeError(
                "ClosureIndex requires a DependencyUniverse; wrap ad-hoc "
                "topologies with graphcore.DependencyUniverse() and its "
                "NodeKey add_edge API")
        self._graph = graph
        self._excluded = tuple(DomainName(s) for s in excluded_suffixes)
        self._memo: Dict[int, int] = {}
        self._split: Dict[int, Tuple[List[int], List[int]]] = {}
        self._key_split: Dict[int, Tuple[List[NodeKey], List[NodeKey]]] = {}
        self._companions: List[MutableMapping[int, object]] = []
        #: slot -> contribution bit (0 for excluded hosts), grown lazily.
        self._slot_bits: List[int] = []
        #: mask -> shared frozenset materialisation (content-addressed).
        self._sets: Dict[int, FrozenSet[DomainName]] = {}
        self.computations = 0
        self.invalidations = 0
        #: Bumped whenever memoized state is actually dropped; callers that
        #: key derived caches on graph structure can compare versions
        #: instead of registering a per-node companion.
        self.version = 0

    def __len__(self) -> int:
        return len(self._memo)

    @property
    def universe(self) -> DependencyUniverse:
        """The integer universe this index runs over."""
        return self._graph

    def register_companion(self,
                           memo: MutableMapping[int, object]) -> None:
        """Purge ``memo``'s entries alongside this index's on invalidation."""
        self._companions.append(memo)

    # -- slot bookkeeping -------------------------------------------------------------

    def _slot_bit(self, slot: int) -> int:
        """The contribution bit for ``slot`` (0 if the host is excluded)."""
        bits = self._slot_bits
        if slot < len(bits):
            return bits[slot]
        hosts = self._graph.slot_hosts
        excluded = self._excluded
        while len(bits) <= slot:
            host = hosts[len(bits)]
            if excluded and any(host.is_subdomain_of(suffix)
                                for suffix in excluded):
                bits.append(0)
            else:
                bits.append(1 << len(bits))
        return bits[slot]

    def mask_set(self, mask: int) -> FrozenSet[DomainName]:
        """Materialise a closure mask as a shared frozenset of hostnames."""
        cached = self._sets.get(mask)
        if cached is None:
            cached = frozenset(self._graph.mask_to_hosts(mask))
            self._sets[mask] = cached
        return cached

    # -- closures ---------------------------------------------------------------------

    def closure(self, node: NodeKey) -> FrozenSet[DomainName]:
        """The set of non-excluded nameservers reachable from ``node``."""
        node_id = self._graph.find_key(node)
        if node_id is None:
            return frozenset()
        return self.mask_set(self.closure_mask_id(node_id))

    def closure_mask_id(self, node: int) -> int:
        """The closure of integer node ``node`` as an NS-slot bitset."""
        memo = self._memo
        cached = memo.get(node)
        if cached is not None:
            return cached
        graph = self._graph
        out = graph.out
        ns_slots = graph.ns_slots
        # When the universe has stopped growing (post-run inspection,
        # recomputation after a sharded merge) the frozen CSR snapshot is
        # still valid and the walk reads it; during discovery the snapshot
        # is stale and the growable rows are iterated directly.  Row order
        # is identical either way.
        csr = graph.csr_if_fresh()
        offsets = targets = None
        if csr is not None:
            offsets, targets = csr

        # Iterative Tarjan: SCCs are closed in reverse topological order, so
        # when a component is popped every successor outside it is already
        # memoized and the component's closure is the union (bitwise OR) of
        # its members' own contribution bits and those successor closures.
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        scc_stack: List[int] = []
        partial: Dict[int, int] = {}
        work: List[Tuple[int, Iterator[int]]] = []
        counter = 0

        def open_node(n: int) -> None:
            nonlocal counter
            index[n] = low[n] = counter
            counter += 1
            scc_stack.append(n)
            on_stack.add(n)
            slot = ns_slots[n]
            partial[n] = self._slot_bit(slot) if slot >= 0 else 0
            if offsets is not None:
                work.append((n, iter(targets[offsets[n]:offsets[n + 1]])))
            else:
                work.append((n, iter(out[n])))

        open_node(node)
        while work:
            current, successors = work[-1]
            descended = False
            for succ in successors:
                done = memo.get(succ)
                if done is not None:
                    partial[current] |= done
                elif succ not in index:
                    open_node(succ)
                    descended = True
                    break
                elif succ in on_stack:
                    if index[succ] < low[current]:
                        low[current] = index[succ]
            if descended:
                continue
            work.pop()
            if low[current] == index[current]:
                members: List[int] = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == current:
                        break
                shared = 0
                for member in members:
                    shared |= partial.pop(member)
                for member in members:
                    memo[member] = shared
                self.computations += len(members)
            if work:
                parent = work[-1][0]
                if low[current] < low[parent]:
                    low[parent] = low[current]
                finished = memo.get(current)
                if finished is not None:
                    partial[parent] |= finished
        return memo[node]

    # -- adjacency splits --------------------------------------------------------------

    def split_ids(self, node: int) -> Tuple[List[int], List[int]]:
        """Integer successors of ``node`` split into (zones, nameservers).

        Successor order is preserved.  The split lists are cached (the
        bottleneck recursion reads them millions of times per survey) and
        dropped by the same invalidation pass as the closures; callers must
        not mutate them.
        """
        cached = self._split.get(node)
        if cached is not None:
            return cached
        zones: List[int] = []
        nameservers: List[int] = []
        kinds = self._graph.kinds
        for succ in self._graph.out[node]:
            kind = kinds[succ]
            if kind == ZONE_CODE:
                zones.append(succ)
            elif kind == NS_CODE:
                nameservers.append(succ)
        split = (zones, nameservers)
        self._split[node] = split
        return split

    def successors_split(self, node: NodeKey
                         ) -> Tuple[List[NodeKey], List[NodeKey]]:
        """The node's successors split into (zones, nameservers), as keys."""
        node_id = self._graph.find_key(node)
        if node_id is None:
            # Not cached: the node may be added (with edges) later, which
            # would not trigger invalidation for a first-ever edge.
            return ([], [])
        cached = self._key_split.get(node_id)
        if cached is not None:
            return cached
        zones, nameservers = self.split_ids(node_id)
        key_of = self._graph.key_of
        split = ([key_of(z) for z in zones], [key_of(n) for n in nameservers])
        self._key_split[node_id] = split
        return split

    # -- invalidation -------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every memoized closure (companion memos included)."""
        self._memo.clear()
        self._split.clear()
        self._key_split.clear()
        for companion in self._companions:
            companion.clear()
        self.version += 1
        # A full clear happens when a shard universe was just absorbed; the
        # merged graph is typically final, so freeze the CSR snapshot now
        # and the recomputation walks the arrays instead of the rows.
        self._graph.csr()

    def reset_companions(self) -> None:
        """Clear every companion memo and bump the version, keeping closures.

        Used when world state *outside* the graph structure changed (a
        server's software banner, a DNSSEC deployment): closure bitsets are
        pure graph reachability and stay valid, but analysis memos keyed on
        the same node ids may embed vulnerability or signature verdicts and
        must go.  The version bump also retires every derived cache keyed
        on it (the engine's per-chain analysis memo, availability
        prefix-resume snapshots).
        """
        for companion in self._companions:
            companion.clear()
        self.version += 1

    def invalidate(self, node: NodeKey) -> None:
        """Drop memoized closures for ``node`` and everything reaching it."""
        node_id = self._graph.find_key(node)
        if node_id is None:
            return
        self.invalidate_id(node_id)

    def invalidate_id(self, node: int) -> None:
        """Integer-id variant of :meth:`invalidate` (the builder's path)."""
        if not self._memo and not self._split and not self._key_split \
                and not any(self._companions):
            return
        memo = self._memo
        split = self._split
        key_split = self._key_split
        companions = self._companions
        inn = self._graph.inn
        seen = {node}
        stack = [node]
        dropped = 0
        while stack:
            current = stack.pop()
            if memo.pop(current, None) is not None:
                self.invalidations += 1
                dropped += 1
            if split.pop(current, None) is not None:
                dropped += 1
            if key_split.pop(current, None) is not None:
                dropped += 1
            for companion in companions:
                if companion.pop(current, None) is not None:
                    dropped += 1
            for pred in inn[current]:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        if dropped:
            self.version += 1


class DelegationView:
    """Read-only accessors shared by :class:`DelegationGraph` / :class:`TCBView`.

    Subclasses provide ``target`` (the surveyed name), ``graph`` (a digraph
    in the module's NodeKey encoding that contains at least everything
    reachable from the target — a :class:`~repro.core.graphcore.KeyGraph`,
    the shared :class:`~repro.core.graphcore.DependencyUniverse`, or any
    object with the same ``successors``/``nodes`` surface, e.g. a
    ``networkx.DiGraph`` built by a test), ``excluded_suffixes``, and an
    implementation of :meth:`tcb`.  All structure accessors follow successor
    edges from the target, so they observe exactly the nodes a per-name
    subgraph copy would contain even when ``graph`` is the whole shared
    universe.
    """

    target: DomainName
    graph: object
    excluded_suffixes: Tuple[DomainName, ...]

    # -- TCB ------------------------------------------------------------------

    def tcb(self) -> Set[DomainName]:
        """The trusted computing base: nameservers the target depends on."""
        raise NotImplementedError

    def tcb_size(self) -> int:
        """Number of nameservers in the TCB."""
        return len(self.tcb())

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self.excluded_suffixes)

    # -- structure accessors used by the bottleneck analysis -----------------------

    def zones_of(self, node: NodeKey) -> List[NodeKey]:
        """Zone successors of a name or nameserver node."""
        return [succ for succ in self.graph.successors(node)
                if succ[0] == ZONE_KIND]

    def nameservers_of_zone(self, zone: NodeKey) -> List[NodeKey]:
        """Nameserver successors of a zone node."""
        return [succ for succ in self.graph.successors(zone)
                if succ[0] == NS_KIND]

    def direct_zones(self) -> List[DomainName]:
        """Zones on the target's own delegation path (its direct chain)."""
        return [key[1] for key in self.zones_of(name_node(self.target))]

    def authoritative_zone(self) -> Optional[DomainName]:
        """The deepest zone on the target's direct chain (its own zone)."""
        zones = self.direct_zones()
        if not zones:
            return None
        return max(zones, key=lambda z: z.depth)

    def in_bailiwick_servers(self) -> Set[DomainName]:
        """TCB members whose hostname lies inside the target's own zone.

        These are the servers "administered by the nameowner" in the paper's
        terminology (2.2 on average, versus a TCB of 46).
        """
        zone = self.authoritative_zone()
        if zone is None:
            return set()
        return {host for host in self.tcb() if host.is_subdomain_of(zone)}

    def dependency_path(self, hostname: NameLike) -> List[NodeKey]:
        """A shortest dependency path from the target to ``hostname``.

        Returns an empty list if the server is not in the graph.  The path
        alternates name/zone/nameserver nodes and reads like the fbi.gov
        anecdote: *name depends on zone, served by host, whose own zone
        depends on ...*.
        """
        source = name_node(self.target)
        destination = ns_node(hostname)
        graph = self.graph
        if destination not in graph:
            return []
        if source == destination:
            return [source]
        # Breadth-first search: parents recorded on first visit yield one
        # shortest path.
        parents: Dict[NodeKey, NodeKey] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[NodeKey] = []
            for node in frontier:
                for succ in graph.successors(node):
                    if succ in parents:
                        continue
                    parents[succ] = node
                    if succ == destination:
                        path = [succ]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    next_frontier.append(succ)
            frontier = next_frontier
        return []


class DelegationGraph(DelegationView):
    """The delegation graph of a single domain name.

    Wraps a digraph whose nodes follow the NodeKey encoding described in the
    module docstring (a :class:`~repro.core.graphcore.KeyGraph` when built
    by the builder; hand-built graphs with the same ``successors``/``nodes``
    surface work too), and provides the accessors the analyses need (TCB
    extraction, zone/nameserver views, dependency paths).
    """

    def __init__(self, target: NameLike, graph,
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES):
        self.target = DomainName(target)
        self.graph = graph
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        if name_node(self.target) not in graph:
            graph.add_node(name_node(self.target))

    # -- basic views -----------------------------------------------------------

    def nameservers(self, include_excluded: bool = False) -> List[DomainName]:
        """All nameserver hostnames in the graph."""
        hosts = [key[1] for key in self.graph.nodes if key[0] == NS_KIND]
        if not include_excluded:
            hosts = [h for h in hosts if not self._is_excluded(h)]
        return sorted(hosts)

    def zones(self) -> List[DomainName]:
        """All zone apexes in the graph."""
        return sorted(key[1] for key in self.graph.nodes if key[0] == ZONE_KIND)

    def tcb(self) -> Set[DomainName]:
        """The trusted computing base: nameservers the target depends on.

        Root servers are excluded, matching the paper's TCB accounting.
        """
        return {key[1] for key in self.graph.nodes
                if key[0] == NS_KIND and not self._is_excluded(key[1])}

    def node_count(self) -> int:
        """Total nodes (names + zones + nameservers) in the graph."""
        return self.graph.number_of_nodes()

    def edge_count(self) -> int:
        """Total dependency edges in the graph."""
        return self.graph.number_of_edges()

    def __repr__(self) -> str:
        return (f"DelegationGraph({self.target!s}, "
                f"{self.tcb_size()} nameservers, "
                f"{len(self.zones())} zones)")


class TCBView(DelegationView):
    """A zero-copy per-name view backed by the shared integer universe.

    Provides everything the TCB report and the bottleneck analysis need —
    :meth:`tcb` / :meth:`tcb_size` / :meth:`in_bailiwick_servers` /
    :meth:`zones_of` / :meth:`nameservers_of_zone` — without materialising a
    copied subgraph.  The TCB itself is an NS-slot bitset from the builder's
    :class:`ClosureIndex`, fixed at construction time; names are
    materialised from it lazily (and shared across views with equal masks).
    Ask the builder for a fresh view (or a full :class:`DelegationGraph`)
    after the universe has grown.

    Integer-path consumers (:class:`~repro.core.mincut.BottleneckAnalyzer`,
    :class:`~repro.core.availability.AvailabilityAnalyzer`) reach the raw
    core through :meth:`int_core`; the ids they see are builder-local and
    must never cross a process boundary.
    """

    def __init__(self, target: NameLike, universe: DependencyUniverse,
                 mask: int, excluded_suffixes: Sequence[str] =
                 DEFAULT_EXCLUDED_SUFFIXES,
                 structure: Optional[ClosureIndex] = None,
                 target_id: Optional[int] = None):
        self.target = DomainName(target)
        self.graph = universe
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        self._mask = mask
        self._structure = structure
        self._target_id = target_id if target_id is not None else \
            universe.find_id(NAME_CODE, self.target)

    # -- integer core -----------------------------------------------------------

    def int_core(self) -> Optional[Tuple[DependencyUniverse, ClosureIndex, int]]:
        """(universe, closure index, target id) for integer fast paths."""
        if self._structure is None or self._target_id is None:
            return None
        return (self.graph, self._structure, self._target_id)

    def tcb_mask(self) -> int:
        """The TCB as an NS-slot bitset (do not persist across processes)."""
        return self._mask

    # -- NodeKey accessors -------------------------------------------------------

    def zones_of(self, node: NodeKey) -> List[NodeKey]:
        if self._structure is None:
            return super().zones_of(node)
        return self._structure.successors_split(node)[0]

    def nameservers_of_zone(self, zone: NodeKey) -> List[NodeKey]:
        if self._structure is None:
            return super().nameservers_of_zone(zone)
        return self._structure.successors_split(zone)[1]

    def tcb(self) -> Set[DomainName]:
        return set(self.tcb_frozen())

    def tcb_size(self) -> int:
        return self._mask.bit_count()

    def tcb_frozen(self) -> FrozenSet[DomainName]:
        """The TCB as the shared (do-not-mutate) frozenset."""
        if self._structure is not None:
            return self._structure.mask_set(self._mask)
        return frozenset(self.graph.mask_to_hosts(self._mask))

    def in_bailiwick_servers(self) -> Set[DomainName]:
        zone = self.authoritative_zone()
        if zone is None:
            return set()
        return {host for host in self.graph.mask_to_hosts(self._mask)
                if host.is_subdomain_of(zone)}

    def __repr__(self) -> str:
        return f"TCBView({self.target!s}, {self.tcb_size()} nameservers)"


class DelegationGraphBuilder:
    """Builds delegation graphs by querying the (simulated) DNS.

    Parameters
    ----------
    resolver:
        The iterative resolver used to enumerate zone cuts.  Its cache is
        shared across all names in a survey.
    excluded_suffixes:
        Hostname suffixes never added to the graph (default: root servers).
    max_depth:
        Safety bound on the recursion depth through nameserver hostnames.
    """

    def __init__(self, resolver: IterativeResolver,
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES,
                 max_depth: int = 150):
        self.resolver = resolver
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        self.max_depth = max_depth
        self._universe = DependencyUniverse()
        self._closures = ClosureIndex(self._universe, self.excluded_suffixes)
        self._chain_cache: Dict[DomainName, List[ZoneCut]] = {}
        self._expanded_hosts: Set[DomainName] = set()
        self._expanded_names: Set[DomainName] = set()
        self.queries_saved_by_cache = 0

    # -- public ---------------------------------------------------------------------

    @property
    def universe(self) -> DependencyUniverse:
        """The shared dependency graph accumulated across all builds."""
        return self._universe

    @property
    def closures(self) -> ClosureIndex:
        """The memoized closure index over the universe."""
        return self._closures

    def build(self, name: NameLike) -> DelegationGraph:
        """Build (or retrieve from the universe) the graph for ``name``.

        Materialises a copied per-name subgraph — use :meth:`tcb_view` when
        only the TCB / bottleneck accessors are needed.
        """
        target = DomainName(name)
        source_id = self._ensure_name(target)
        subgraph = self._universe.subgraph_copy(source_id)
        return DelegationGraph(target, subgraph,
                               excluded_suffixes=self.excluded_suffixes)

    def tcb_view(self, name: NameLike) -> TCBView:
        """Discover ``name`` and return a zero-copy view of its closure."""
        target = DomainName(name)
        source_id = self._ensure_name(target)
        mask = self._closures.closure_mask_id(source_id)
        return TCBView(target, self._universe, mask,
                       excluded_suffixes=self.excluded_suffixes,
                       structure=self._closures, target_id=source_id)

    def closure_of(self, name: NameLike) -> FrozenSet[DomainName]:
        """The memoized TCB of ``name`` (discovering it if needed)."""
        target = DomainName(name)
        source_id = self._ensure_name(target)
        return self._closures.mask_set(
            self._closures.closure_mask_id(source_id))

    def absorb(self, other: "DelegationGraphBuilder") -> None:
        """Fold another builder's discovered universe into this one.

        Used by the sharded survey backends to merge per-shard universes
        back into the primary builder: nodes, edges, chain caches, and
        expansion markers are adopted (re-interned — integer ids are
        builder-local), and the closure memo is reset because merged edges
        may extend existing closures.
        """
        self._universe.merge(other._universe)
        self._chain_cache.update(other._chain_cache)
        self._expanded_hosts |= other._expanded_hosts
        self._expanded_names |= other._expanded_names
        self._closures.clear()

    def apply_changes(self, changes, dirty_names: Iterable[NameLike] = ()
                      ) -> None:
        """Surgically update the warm universe for a journalled world change.

        ``changes`` is a :class:`~repro.topology.changes.ChangeSet`.  The
        goal is byte-identity with a cold discovery of the mutated world
        while keeping every untouched region's closures, splits, chains,
        and resolver walk state warm:

        * resolver walk caches through or below re-delegated / newly cut
          zones are dropped (:meth:`IterativeResolver.invalidate_zones`);
        * re-delegated zone nodes get their successor rows rebuilt in the
          new canonical ``ZoneCut.nameservers`` order, with ancestor
          closures invalidated;
        * cached chains that traverse a re-delegated zone (or run below a
          newly cut one) are dropped, and the hosts among them get their
          dependency rows cleared and re-walked eagerly — their regions
          feed closure recomputation before any per-name walk would reach
          them;
        * every dirty name's expansion marker and dependency row is
          cleared so its next ``tcb_view`` re-walks the live chain,
          rebuilding the row in cold (top-down) cut order.

        Per-node successor order is what makes this sound: a node's row
        only ever depends on its *own* first discovery walk (later walks
        de-duplicate), so rebuilding exactly the affected rows in walk
        order reproduces what a from-scratch discovery would hold.
        """
        universe = self._universe
        closures = self._closures
        edited = dict(changes.edited_zones)
        created = tuple(changes.created_zones)

        self.resolver.invalidate_zones(list(edited) + list(created))
        if changes.added_names:
            self.resolver.cache.purge(names=changes.added_names)

        # Cached chains that embed a stale cut (re-delegated zone on the
        # path) or miss a new one (the walked name lies below a new cut).
        def chain_stale(name: DomainName, cuts) -> bool:
            if any(cut.zone in edited for cut in cuts):
                return True
            return any(name.is_subdomain_of(apex) for apex in created)

        stale = [name for name, cuts in self._chain_cache.items()
                 if chain_stale(name, cuts)]
        stale_hosts: List[Tuple[DomainName, int]] = []
        for name in stale:
            del self._chain_cache[name]
            if name in self._expanded_hosts:
                self._expanded_hosts.discard(name)
                hnode = universe.find_id(NS_CODE, name)
                if hnode is not None:
                    closures.invalidate_id(hnode)
                    universe.clear_out_edges(hnode)
                    stale_hosts.append((name, hnode))
            if name in self._expanded_names:
                # Stale surveyed names are normally also dirty (handled
                # below); clearing here as well keeps the universe sound
                # even for callers that under-report the dirty set.
                self._expanded_names.discard(name)
                node_id = universe.find_id(NAME_CODE, name)
                if node_id is not None:
                    closures.invalidate_id(node_id)
                    universe.clear_out_edges(node_id)

        # Dirty names: clear their rows so the next tcb_view re-walks.
        for name in dirty_names:
            name = DomainName(name)
            self._expanded_names.discard(name)
            self._chain_cache.pop(name, None)
            node_id = universe.find_id(NAME_CODE, name)
            if node_id is not None:
                closures.invalidate_id(node_id)
                universe.clear_out_edges(node_id)

        # Re-delegated zones: rebuild NS successor rows in canonical order.
        for apex, nameservers in edited.items():
            znode = universe.find_id(ZONE_CODE, apex)
            if znode is None:
                continue
            targets = [universe.ensure_id(NS_CODE, hostname)
                       for hostname in nameservers
                       if not self._is_excluded(hostname)]
            universe.set_out_edges(znode, targets)
            closures.invalidate_id(znode)

        # Eagerly rebuild stale host regions: closures of dirty names may
        # traverse them without any walk ever revisiting the host itself.
        for hostname, hnode in stale_hosts:
            if hostname in self._expanded_hosts:
                continue  # pulled back in by an earlier host's re-walk
            self._expand_host(hostname, hnode, depth=1)

    def build_many(self, names: Iterable[NameLike]) -> Dict[DomainName, DelegationGraph]:
        """Build graphs for many names, sharing every intermediate result."""
        graphs: Dict[DomainName, DelegationGraph] = {}
        for name in names:
            graph = self.build(name)
            graphs[graph.target] = graph
        return graphs

    def chain(self, name: NameLike) -> List[ZoneCut]:
        """The (cached) zone-cut chain for a name or hostname."""
        key = DomainName(name)
        cached = self._chain_cache.get(key)
        if cached is not None:
            self.queries_saved_by_cache += 1
            return cached
        try:
            cuts = self.resolver.zone_cut_chain(key)
        except ResolutionError:
            cuts = []
        self._chain_cache[key] = cuts
        return cuts

    def discovered_nameservers(self) -> Set[DomainName]:
        """Every nameserver hostname discovered so far (survey-wide)."""
        return set(self._universe.slot_hosts)

    # -- internals --------------------------------------------------------------------

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self.excluded_suffixes)

    def _add_edge_ids(self, dependent: int, dependency: int) -> None:
        """Add a dependency edge, invalidating stale closures if needed."""
        if self._universe.add_edge_ids(dependent, dependency):
            # The dependent (and everything that reaches it) may have a
            # memoized closure that no longer covers this new dependency.
            self._closures.invalidate_id(dependent)

    def _ensure_name(self, target: DomainName) -> int:
        """Add the target name's chain (and its closure) to the universe."""
        universe = self._universe
        if target in self._expanded_names:
            return universe.ensure_id(NAME_CODE, target)
        self._expanded_names.add(target)
        source = universe.ensure_id(NAME_CODE, target)
        for cut in self.chain(target):
            self._add_zone_cut(source, cut, depth=0)
        return source

    def _add_zone_cut(self, dependent: int, cut: ZoneCut,
                      depth: int) -> None:
        """Record ``dependent -> zone -> nameservers`` and expand hostnames."""
        universe = self._universe
        znode = universe.ensure_id(ZONE_CODE, cut.zone)
        self._add_edge_ids(dependent, znode)
        for hostname in cut.nameservers:
            if self._is_excluded(hostname):
                continue
            hnode = universe.ensure_id(NS_CODE, hostname)
            self._add_edge_ids(znode, hnode)
            self._expand_host(hostname, hnode, depth + 1)

    def _expand_host(self, hostname: DomainName, hnode: int,
                     depth: int) -> None:
        """Add a nameserver hostname's own dependency chain to the universe."""
        if hostname in self._expanded_hosts:
            return
        if depth > self.max_depth:
            return
        self._expanded_hosts.add(hostname)
        for cut in self.chain(hostname):
            self._add_zone_cut(hnode, cut, depth)
