"""Simulated web-directory crawl (Yahoo!/DMOZ stand-in) and Alexa cohort.

The paper's name list came from crawling the Yahoo! and DMOZ.org web
directories (593,160 unique web-server names across 196 TLDs) and its
"popular names" cohort from the Alexa top-500.  The directory here plays the
same role for the synthetic Internet: it is the list of externally-visible
web-server names the survey resolves, each annotated with the TLD, the
operator category of its owner, and a popularity score used to pick the
"top-500" cohort.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.dns.name import DomainName, NameLike


@dataclasses.dataclass
class DirectoryEntry:
    """One web-server name as it would appear in a directory crawl."""

    name: DomainName
    tld: str
    category: str
    popularity: float
    source: str = "dmoz"

    def __post_init__(self):
        self.name = DomainName(self.name)


class WebDirectory:
    """The crawled list of web-server names, with sampling helpers."""

    def __init__(self, entries: Optional[Iterable[DirectoryEntry]] = None):
        self._entries: List[DirectoryEntry] = []
        self._by_name: Dict[DomainName, DirectoryEntry] = {}
        for entry in entries or ():
            self.add(entry)

    # -- construction ------------------------------------------------------------

    def add(self, entry: DirectoryEntry) -> bool:
        """Add an entry; duplicates (by name) are ignored.

        Returns True if the entry was new.
        """
        if entry.name in self._by_name:
            return False
        self._entries.append(entry)
        self._by_name[entry.name] = entry
        return True

    def add_name(self, name: NameLike, tld: Optional[str] = None,
                 category: str = "unknown", popularity: float = 1.0,
                 source: str = "dmoz") -> bool:
        """Convenience wrapper building the entry from loose arguments."""
        name = DomainName(name)
        return self.add(DirectoryEntry(name=name, tld=tld or (name.tld or ""),
                                       category=category,
                                       popularity=popularity, source=source))

    # -- access ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DirectoryEntry]:
        return iter(self._entries)

    def __contains__(self, name: NameLike) -> bool:
        return DomainName(name) in self._by_name

    def entry(self, name: NameLike) -> Optional[DirectoryEntry]:
        """The entry for ``name``, if present."""
        return self._by_name.get(DomainName(name))

    def names(self) -> List[DomainName]:
        """All names in insertion order."""
        return [entry.name for entry in self._entries]

    def entries(self) -> List[DirectoryEntry]:
        """All entries in insertion order."""
        return list(self._entries)

    # -- views used by the survey ------------------------------------------------------

    def tlds(self) -> List[str]:
        """Distinct TLDs represented, sorted by name count (descending)."""
        counts = self.tld_counts()
        return sorted(counts, key=lambda tld: (-counts[tld], tld))

    def tld_counts(self) -> Dict[str, int]:
        """Number of names per TLD."""
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.tld] = counts.get(entry.tld, 0) + 1
        return counts

    def by_tld(self, tld: str) -> List[DirectoryEntry]:
        """All entries under ``tld``."""
        return [entry for entry in self._entries if entry.tld == tld]

    def by_category(self, category: str) -> List[DirectoryEntry]:
        """All entries whose owner falls in ``category``."""
        return [entry for entry in self._entries if entry.category == category]

    def alexa_top(self, count: int = 500) -> List[DirectoryEntry]:
        """The ``count`` most popular entries (the Alexa-top-500 stand-in)."""
        ranked = sorted(self._entries, key=lambda e: -e.popularity)
        return ranked[:count]

    def sample(self, count: int, rng: Optional[random.Random] = None
               ) -> List[DirectoryEntry]:
        """A uniform random sample of entries (without replacement)."""
        rng = rng or random.Random(0)
        if count >= len(self._entries):
            return list(self._entries)
        return rng.sample(self._entries, count)

    def weighted_sample(self, count: int,
                        rng: Optional[random.Random] = None
                        ) -> List[DirectoryEntry]:
        """A popularity-weighted sample (models crawl bias toward busy sites)."""
        rng = rng or random.Random(0)
        if count >= len(self._entries):
            return list(self._entries)
        weights = [entry.popularity for entry in self._entries]
        chosen: List[DirectoryEntry] = []
        seen: set = set()
        # Rejection-style draw: keep drawing until we have ``count`` distinct
        # entries; bounded to avoid pathological loops on tiny directories.
        attempts = 0
        while len(chosen) < count and attempts < 50 * count:
            attempts += 1
            entry = rng.choices(self._entries, weights=weights, k=1)[0]
            if entry.name not in seen:
                seen.add(entry.name)
                chosen.append(entry)
        return chosen

    def summary(self) -> Dict[str, float]:
        """Headline statistics about the directory itself."""
        return {
            "names": float(len(self._entries)),
            "tlds": float(len(self.tld_counts())),
            "gtld_names": float(sum(1 for e in self._entries
                                    if len(e.tld) > 2)),
            "cctld_names": float(sum(1 for e in self._entries
                                     if len(e.tld) == 2)),
        }
