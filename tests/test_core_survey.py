"""Tests for the survey orchestrator and aggregated results."""

import pytest

from repro.dns.name import DomainName
from repro.core.survey import Survey
from repro.topology.anecdotes import FBI_WEB_NAME


# -- record-level invariants (on the shared small survey) --------------------------------

def test_every_directory_name_gets_a_record(small_internet, small_survey):
    assert len(small_survey) == len(small_internet.directory)
    names = {str(record.name) for record in small_survey.records}
    assert str(FBI_WEB_NAME) in names


def test_records_resolve_and_have_consistent_counts(small_survey):
    resolved = small_survey.resolved_records()
    assert len(resolved) >= 0.95 * len(small_survey)
    for record in resolved:
        assert record.tcb_size == len(record.tcb_servers)
        assert 0 <= record.in_bailiwick <= record.tcb_size
        assert 0 <= record.vulnerable_in_tcb <= record.tcb_size
        assert 0 <= record.compromisable_in_tcb <= record.vulnerable_in_tcb \
            or record.compromisable_in_tcb <= record.tcb_size
        assert 0 <= record.mincut_size <= record.tcb_size
        assert record.mincut_safe + record.mincut_vulnerable == \
            record.mincut_size
        assert 0.0 <= record.safety_percentage <= 100.0
        assert record.mincut_servers <= record.tcb_servers


def test_classification_consistent_with_counts(small_survey):
    for record in small_survey.resolved_records():
        if record.classification == "complete":
            assert record.mincut_vulnerable == record.mincut_size > 0
            assert record.vulnerable_in_tcb > 0
        elif record.classification == "dos-assisted":
            assert record.mincut_safe == 1
            assert record.mincut_vulnerable >= 1
        elif record.classification == "partial":
            assert record.vulnerable_in_tcb > 0
        elif record.classification == "safe":
            assert record.mincut_vulnerable == 0 or record.mincut_size == 0
        else:  # pragma: no cover - defensive
            pytest.fail(f"unknown classification {record.classification}")


def test_safety_percentage_matches_vulnerable_count(small_survey):
    for record in small_survey.resolved_records():
        if record.tcb_size:
            expected = 100.0 * (record.tcb_size - record.vulnerable_in_tcb) / \
                record.tcb_size
            # Records are born canonicalised to the snapshot codecs'
            # three decimals (so they survive a store round trip equal).
            assert record.safety_percentage == round(expected, 3)


def test_cctld_flag(small_survey):
    for record in small_survey.records:
        assert record.is_cctld_name == (len(record.tld) == 2)


# -- cohorts and figure data ----------------------------------------------------------------

def test_popular_cohort_size(small_internet, small_survey):
    popular = small_survey.popular_records()
    assert len(popular) == len(small_survey.popular_names)
    assert len(popular) <= 60


def test_tcb_cdf_and_sizes(small_survey):
    sizes = small_survey.tcb_sizes()
    cdf = small_survey.tcb_cdf()
    assert len(cdf) == len(sizes)
    assert cdf.value_at_percentile(50) >= 1


def test_mean_tcb_by_tld_split(small_survey):
    gtld = small_survey.mean_tcb_by_tld(kind="gtld", minimum_samples=1)
    cctld = small_survey.mean_tcb_by_tld(kind="cctld", minimum_samples=1)
    assert all(len(label) > 2 for label in gtld)
    assert all(len(label) == 2 for label in cctld)
    assert "com" in gtld
    combined = small_survey.mean_tcb_by_tld(kind="all", minimum_samples=1)
    assert set(gtld) <= set(combined)


def test_vulnerability_views(small_survey):
    counts = small_survey.vulnerable_in_tcb_counts()
    assert len(counts) == len(small_survey.resolved_records())
    fraction = small_survey.fraction_with_vulnerable_dependency()
    expected = sum(1 for c in counts if c > 0) / len(counts)
    assert fraction == pytest.approx(expected)
    safety = small_survey.safety_percentages()
    assert all(0.0 <= value <= 100.0 for value in safety)


def test_bottleneck_views(small_survey):
    safe_counts = small_survey.safe_bottleneck_counts()
    assert len(safe_counts) == len(small_survey.resolved_records())
    fraction = small_survey.fraction_completely_hijackable()
    assert 0.0 <= fraction <= 1.0
    assert small_survey.mean_mincut_size() >= 1.0


def test_value_ranking_from_survey(small_survey):
    ranking = small_survey.server_value_ranking()
    assert ranking[0].names_controlled >= ranking[-1].names_controlled
    total = len(small_survey.resolved_records())
    assert ranking[0].names_controlled <= total
    edu_ranking = small_survey.server_value_ranking(tld_filter=("edu",))
    assert all(value.operator_tld == "edu" for value in edu_ranking)


def test_server_names_controlled_consistency(small_survey):
    analyzer = small_survey.value_analyzer()
    for hostname, count in list(small_survey.server_names_controlled.items())[:50]:
        assert analyzer.names_controlled(hostname) == count


def test_headline_keys_and_ranges(small_survey):
    headline = small_survey.headline()
    expected_keys = {
        "names_surveyed", "names_resolved", "servers_discovered",
        "mean_tcb_size", "median_tcb_size", "fraction_tcb_over_200",
        "popular_mean_tcb_size", "mean_in_bailiwick",
        "vulnerable_server_fraction",
        "fraction_names_with_vulnerable_dependency",
        "mean_vulnerable_in_tcb", "fraction_completely_hijackable",
        "mean_mincut_size"}
    assert expected_keys <= set(headline)
    assert headline["names_surveyed"] >= headline["names_resolved"]
    assert 0.0 <= headline["vulnerable_server_fraction"] <= 1.0
    assert 0.0 <= headline["fraction_completely_hijackable"] <= 1.0
    assert headline["mean_tcb_size"] >= headline["mean_vulnerable_in_tcb"]


def test_record_lookup(small_survey):
    record = small_survey.record_for(FBI_WEB_NAME)
    assert record is not None
    assert record.tld == "gov"
    assert small_survey.record_for("www.never-surveyed.zz") is None


def test_fingerprints_cover_discovered_servers(small_survey):
    discovered = set(small_survey.server_names_controlled)
    fingerprinted = set(small_survey.fingerprints)
    assert discovered <= fingerprinted


# -- survey options ---------------------------------------------------------------------------------

def test_survey_specific_names(small_internet):
    survey = Survey(small_internet, popular_count=5)
    results = survey.run(names=[FBI_WEB_NAME, "www.fbi.gov"])
    assert len(results) == 2
    assert all(record.resolved for record in results.records)


def test_survey_adhoc_name_not_in_directory(small_internet):
    survey = Survey(small_internet, popular_count=5)
    results = survey.run(names=["www.sprintip.com"])
    assert len(results) == 1
    assert results.records[0].category == "adhoc"


def test_survey_max_names_and_progress(small_internet):
    calls = []
    survey = Survey(small_internet, popular_count=5)
    results = survey.run(max_names=10,
                         progress=lambda done, total: calls.append((done, total)))
    assert len(results) == 10
    assert calls[-1] == (10, 10)
    assert calls[0] == (1, 10)


def test_survey_without_bottleneck_analysis(small_internet):
    survey = Survey(small_internet, include_bottleneck=False, popular_count=5)
    results = survey.run(max_names=8)
    for record in results.records:
        assert record.mincut_size == 0
        assert record.classification in ("safe", "partial")
