"""Statistical helpers: CDFs, summaries, group averages, rank series.

These are the building blocks the benchmark harness uses to regenerate the
paper's figures: cumulative distributions (Figures 2, 5, 6, 7), per-group
averages (Figures 3 and 4), and rank-versus-count series (Figures 8 and 9).
They work on plain sequences of numbers so they can be reused outside the
survey pipeline (e.g. in the ablation benches).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclasses.dataclass
class CDFSeries:
    """An empirical cumulative distribution function.

    ``points`` is a list of ``(value, percentile)`` pairs with percentiles in
    [0, 100], sorted by value — directly plottable as the paper's CDF
    figures.
    """

    points: List[Tuple[float, float]]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "CDFSeries":
        """Build the empirical CDF of ``values``."""
        ordered = sorted(float(v) for v in values)
        total = len(ordered)
        points: List[Tuple[float, float]] = []
        if not total:
            return cls(points=points)
        for index, value in enumerate(ordered, start=1):
            points.append((value, 100.0 * index / total))
        return cls(points=points)

    def percentile_at(self, value: float) -> float:
        """Percentage of observations less than or equal to ``value``."""
        if not self.points:
            return 0.0
        best = 0.0
        for observed, percentile in self.points:
            if observed <= value:
                best = percentile
            else:
                break
        return best

    def value_at_percentile(self, percentile: float) -> float:
        """Smallest value at or above the requested percentile."""
        if not self.points:
            return 0.0
        for observed, cumulative in self.points:
            if cumulative >= percentile:
                return observed
        return self.points[-1][0]

    def fraction_above(self, value: float) -> float:
        """Fraction (0..1) of observations strictly greater than ``value``."""
        return max(0.0, 1.0 - self.percentile_at(value) / 100.0)

    def __len__(self) -> int:
        return len(self.points)


def summary_stats(values: Sequence[float]) -> Dict[str, float]:
    """Mean, median, percentiles, and extremes of a sample."""
    data = sorted(float(v) for v in values)
    if not data:
        return {"count": 0.0, "mean": 0.0, "median": 0.0, "p90": 0.0,
                "p99": 0.0, "min": 0.0, "max": 0.0, "stddev": 0.0}
    count = len(data)
    # fsum + clamping keep the mean inside [min, max] even for samples of
    # denormals, where naive summation rounds below the smallest element.
    mean = min(max(math.fsum(data) / count, data[0]), data[-1])
    variance = math.fsum((v - mean) ** 2 for v in data) / count
    return {
        "count": float(count),
        "mean": mean,
        "median": _percentile(data, 50.0),
        "p90": _percentile(data, 90.0),
        "p99": _percentile(data, 99.0),
        "min": data[0],
        "max": data[-1],
        "stddev": math.sqrt(variance),
    }


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile (0..100) of an unsorted sample.

    The public face of :func:`_percentile`, so other reducers (e.g. the
    churn timeline's p95 TCB) report percentiles with the same definition
    as :func:`summary_stats`.
    """
    return _percentile(sorted(float(v) for v in values), pct)


def _percentile(ordered: Sequence[float], percentile: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (percentile / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def delta_stats(before: Sequence[float],
                after: Sequence[float]) -> Dict[str, float]:
    """Churn summary between two aligned samples (e.g. snapshot diffing).

    ``before[i]`` and ``after[i]`` must describe the same entity (the same
    surveyed name in two snapshots).  Returns the count compared, how many
    moved, and signed/absolute delta statistics.
    """
    if len(before) != len(after):
        raise ValueError("before and after must be the same length")
    deltas = [float(b) - float(a) for a, b in zip(before, after)]
    if not deltas:
        return {"count": 0.0, "changed": 0.0, "mean_delta": 0.0,
                "mean_abs_delta": 0.0, "max_abs_delta": 0.0}
    changed = sum(1 for delta in deltas if delta != 0.0)
    return {
        "count": float(len(deltas)),
        "changed": float(changed),
        "mean_delta": math.fsum(deltas) / len(deltas),
        "mean_abs_delta": math.fsum(abs(d) for d in deltas) / len(deltas),
        "max_abs_delta": max(abs(d) for d in deltas),
    }


def average_by_group(values: Mapping[str, Sequence[float]],
                     minimum_samples: int = 1) -> Dict[str, float]:
    """Average of each group's values (e.g. mean TCB per TLD).

    Groups with fewer than ``minimum_samples`` observations are dropped so a
    single odd name does not produce a misleading bar.
    """
    averages: Dict[str, float] = {}
    for group, group_values in values.items():
        group_values = list(group_values)
        if len(group_values) < minimum_samples:
            continue
        averages[group] = sum(group_values) / len(group_values)
    return averages


def sort_groups_descending(averages: Mapping[str, float]) -> List[Tuple[str, float]]:
    """Groups ordered by decreasing average (the bar order of Figures 3-4)."""
    return sorted(averages.items(), key=lambda item: (-item[1], item[0]))


def rank_series(counts: Mapping[object, int]) -> List[Tuple[int, int]]:
    """Rank-versus-count series (the log-log scatter of Figures 8-9)."""
    ordered = sorted(counts.values(), reverse=True)
    return [(rank, count) for rank, count in enumerate(ordered, start=1)]


def histogram(values: Sequence[float], bin_edges: Sequence[float]
              ) -> List[Tuple[float, float, int]]:
    """Simple histogram: list of (low, high, count) per bin."""
    edges = sorted(bin_edges)
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    bins = [(edges[i], edges[i + 1], 0) for i in range(len(edges) - 1)]
    counts = [0] * (len(edges) - 1)
    for value in values:
        for index in range(len(edges) - 1):
            upper_ok = value < edges[index + 1] or \
                (index == len(edges) - 2 and value <= edges[index + 1])
            if edges[index] <= value and upper_ok:
                counts[index] += 1
                break
    return [(low, high, counts[index])
            for index, (low, high, _unused) in enumerate(bins)]


def format_table(rows: Sequence[Sequence[object]],
                 headers: Optional[Sequence[str]] = None) -> str:
    """Render rows as a fixed-width text table (used by benches and the CLI)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    if headers is not None:
        materialised.insert(0, [str(h) for h in headers])
    if not materialised:
        return ""
    widths = [max(len(row[col]) for row in materialised)
              for col in range(len(materialised[0]))]
    lines = []
    for index, row in enumerate(materialised):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if headers is not None and index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
