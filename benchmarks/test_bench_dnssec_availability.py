"""Section 5 extensions: DNSSEC deployment and the availability trade-off.

The paper's discussion section makes two claims that go beyond the measured
figures; these benches quantify both on the synthetic substrate:

* "Deployment of DNSSEC can help ... While DNSSEC enables detection of
  integrity violations, malicious agents could still easily disrupt name
  service" — swept as deployment fraction vs. the share of hijackable names
  whose forgery becomes detectable (the delegation bottlenecks themselves
  are unchanged).
* The availability-vs-security dilemma: off-site secondaries raise a name's
  survival probability under random server failures while enlarging its
  trusted computing base.
"""

from conftest import comparison_rows

from repro.core.availability import AvailabilityAnalyzer
from repro.core.dnssec_impact import DNSSECImpactAnalyzer, deploy_dnssec
from repro.core.survey import Survey
from repro.topology.generator import GeneratorConfig, InternetGenerator

#: Small world regenerated per deployment level (signing mutates zones).
DNSSEC_BASE = dict(seed=20040722, sld_count=220, directory_name_count=360,
                   university_count=45, hosting_provider_count=12,
                   isp_count=8, alexa_count=60)


def _world():
    internet = InternetGenerator(GeneratorConfig(**DNSSEC_BASE)).generate()
    results = Survey(internet, popular_count=60).run()
    return internet, results


def test_dnssec_deployment_sweep(benchmark, figure_writer):
    """Hijack detectability as a function of DNSSEC deployment."""
    def sweep():
        reports = {}
        for fraction in (0.0, 0.5, 1.0):
            internet, results = _world()
            deployment = deploy_dnssec(internet, fraction=fraction,
                                       always_sign_tlds=fraction > 0.0)
            analyzer = DNSSECImpactAnalyzer(internet, deployment)
            reports[fraction] = analyzer.analyze(results, max_names=150)
        return reports

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["deployment  secure-names  hijackable  detected  undetected"]
    for fraction, report in sorted(reports.items()):
        lines.append(f"  {fraction:9.1f}  {report.fraction_secure:12.2%}  "
                     f"{report.hijackable:10d}  "
                     f"{report.hijackable_detected:8d}  "
                     f"{report.hijackable_undetected:10d}")
    lines.append("")
    lines.append("(hijackable counts barely move with deployment: DNSSEC "
                 "detects forgeries but the delegation bottlenecks remain)")
    figure_writer.write("section5_dnssec_sweep",
                        "Section 5: DNSSEC deployment sweep", lines)

    none, half, full = (reports[0.0], reports[0.5], reports[1.0])
    assert none.fraction_secure == 0.0
    assert none.hijackable_detected == 0
    assert 0.0 < half.fraction_secure < full.fraction_secure
    assert full.fraction_secure >= 0.8
    assert full.hijackable_detected >= full.hijackable_undetected
    # The number of structurally hijackable names is unchanged by signing.
    assert abs(full.hijackable - none.hijackable) <= 0.1 * max(1, none.hijackable)


def test_availability_security_tradeoff(benchmark, bench_internet,
                                        paper_survey, figure_writer):
    """Availability under random failures versus TCB size."""
    records = paper_survey.resolved_records()
    small = [r for r in records if r.tcb_size <= 30][:60]
    large = [r for r in records if r.tcb_size >= 80][:60]
    survey = Survey(bench_internet, popular_count=10)
    analyzer = AvailabilityAnalyzer(up_probability=0.95)

    def evaluate(cohort):
        availabilities = []
        spof = 0
        for record in cohort:
            graph = survey.builder.build(record.name)
            availabilities.append(analyzer.resolution_probability(graph))
            if analyzer.single_points_of_failure(graph):
                spof += 1
        return (sum(availabilities) / len(availabilities),
                spof / len(cohort))

    small_avail, small_spof = benchmark.pedantic(
        lambda: evaluate(small), iterations=1, rounds=1)
    large_avail, large_spof = evaluate(large)

    lines = [
        "cohort                      mean TCB   availability  frac. with SPOF",
        f"  small TCB (<=30 servers)  {sum(r.tcb_size for r in small)/len(small):8.1f}"
        f"   {small_avail:11.4f}   {small_spof:14.2%}",
        f"  large TCB (>=80 servers)  {sum(r.tcb_size for r in large)/len(large):8.1f}"
        f"   {large_avail:11.4f}   {large_spof:14.2%}",
        "",
        "(per-server up-probability 0.95; large TCBs buy redundancy at every",
        " level, so availability stays high -- the security cost is the TCB)",
    ]
    figure_writer.write("section5_availability_tradeoff",
                        "Availability vs. security trade-off", lines)

    assert small and large
    assert 0.5 <= small_avail <= 1.0
    assert 0.5 <= large_avail <= 1.0
    # Names with sprawling TCBs are at least as available as compact ones:
    # that is precisely why administrators accept the larger trust base.
    assert large_avail >= small_avail - 0.05
