"""Export codecs: JSON snapshots and delegation-graph visualisations.

Two families live here, both *interop boundaries* rather than hot paths:

**Survey-results JSON.**  The original snapshot format — a self-describing
JSON document mirroring :meth:`NameRecord.to_dict` — now demoted to an
export/interop codec: the performance path is the binary REPRO-SNAP store
(:mod:`repro.core.snapstore`), while JSON remains the golden format the
byte-identity tests compare everything against and the form external
tooling can read.  :func:`save_results_json` optionally zlib-compresses
(stdlib only); :func:`load_results_json` sniffs and decompresses
transparently.  Most callers should go through the format-dispatching
:func:`repro.core.snapshot.save_results` / ``load_results`` instead.

**Delegation-graph drawings.**  Figure 1 of the paper is a drawing of
www.cs.cornell.edu's delegation graph; :func:`to_ascii_tree`,
:func:`to_dot`, and :func:`to_graphml` render the same structure for any
name (networkx is imported lazily — only :func:`to_graphml` needs it).
"""

from __future__ import annotations

import json
import pathlib
import zlib
from typing import Dict, List, Mapping, Optional, Set, Union

from repro.dns.name import DomainName
from repro.core.atomic import atomic_write_bytes, atomic_write_text
from repro.core.delegation import (
    DelegationGraph,
    NAME_KIND,
    NS_KIND,
    ZONE_KIND,
    name_node,
)
from repro.core.survey import NameRecord, SurveyResults
from repro.vulns.bindversion import BindVersion
from repro.vulns.fingerprint import FingerprintResult

PathLike = Union[str, pathlib.Path]

#: Format version written into every JSON snapshot.
SNAPSHOT_FORMAT_VERSION = 1


# -- survey-results JSON codec ---------------------------------------------------------


def results_to_dict(results: SurveyResults) -> Dict[str, object]:
    """Convert survey results to a JSON-serialisable dictionary."""
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "metadata": dict(results.metadata),
        "records": [record.to_dict() for record in results.records],
        "server_names_controlled": {
            str(host): count
            for host, count in results.server_names_controlled.items()},
        "vulnerable_servers": sorted(str(host)
                                     for host in results.vulnerable_servers),
        "compromisable_servers": sorted(
            str(host) for host in results.compromisable_servers),
        "popular_names": sorted(str(name) for name in results.popular_names),
        "fingerprints": {
            str(host): {
                "banner": result.banner,
                "reachable": result.reachable,
                "vulnerabilities": list(result.vulnerabilities),
            }
            for host, result in results.fingerprints.items()},
    }


def results_from_dict(payload: Dict[str, object]) -> SurveyResults:
    """Rebuild survey results from a dictionary produced by
    :func:`results_to_dict`."""
    version = payload.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version: {version!r}")

    records = []
    for raw in payload.get("records", []):
        records.append(NameRecord(
            name=DomainName(raw["name"]),
            tld=raw["tld"],
            category=raw["category"],
            is_popular=bool(raw["is_popular"]),
            resolved=bool(raw["resolved"]),
            tcb_size=int(raw["tcb_size"]),
            in_bailiwick=int(raw["in_bailiwick"]),
            vulnerable_in_tcb=int(raw["vulnerable_in_tcb"]),
            compromisable_in_tcb=int(raw["compromisable_in_tcb"]),
            safety_percentage=float(raw["safety_percentage"]),
            mincut_size=int(raw["mincut_size"]),
            mincut_safe=int(raw["mincut_safe"]),
            mincut_vulnerable=int(raw["mincut_vulnerable"]),
            classification=raw["classification"],
            tcb_servers={DomainName(s) for s in raw.get("tcb_servers", [])},
            mincut_servers={DomainName(s)
                            for s in raw.get("mincut_servers", [])},
            extras=dict(raw.get("extras", {})),
        ))

    fingerprints = {}
    for host_text, raw in payload.get("fingerprints", {}).items():
        hostname = DomainName(host_text)
        banner = raw.get("banner")
        fingerprints[hostname] = FingerprintResult(
            hostname=hostname, banner=banner,
            version=BindVersion.parse(banner),
            reachable=bool(raw.get("reachable", True)),
            vulnerabilities=list(raw.get("vulnerabilities", [])))

    return SurveyResults(
        records=records,
        server_names_controlled={
            DomainName(host): int(count)
            for host, count in payload.get("server_names_controlled",
                                           {}).items()},
        vulnerable_servers={DomainName(host)
                            for host in payload.get("vulnerable_servers", [])},
        compromisable_servers={
            DomainName(host)
            for host in payload.get("compromisable_servers", [])},
        fingerprints=fingerprints,
        popular_names={DomainName(name)
                       for name in payload.get("popular_names", [])},
        metadata=dict(payload.get("metadata", {})),
    )


def _is_zlib_header(head: bytes) -> bool:
    """True when ``head`` starts a zlib stream (RFC 1950 CMF/FLG pair)."""
    return (len(head) >= 2 and head[0] == 0x78
            and head[1] in (0x01, 0x5E, 0x9C, 0xDA))


def save_results_json(results: SurveyResults, path: PathLike,
                      indent: int = 0, compress: bool = False
                      ) -> pathlib.Path:
    """Write survey results to ``path`` as JSON; returns the path written.

    ``compress=True`` wraps the document in a stdlib zlib stream —
    :func:`load_results_json` (and the sniffing loader) detects the
    two-byte zlib header and decompresses transparently, so compressed and
    plain snapshots are interchangeable everywhere a path is accepted.

    Both forms commit through :mod:`repro.core.atomic`: an existing
    snapshot is only ever replaced by a complete new one.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = results_to_dict(results)
    text = json.dumps(payload, indent=indent or None, sort_keys=True)
    if compress:
        atomic_write_bytes(path, zlib.compress(text.encode("utf-8"),
                                               level=6))
    else:
        atomic_write_text(path, text)
    return path


def load_results_json(path: PathLike) -> SurveyResults:
    """Read JSON survey results (zlib-compressed or plain) from ``path``."""
    raw = pathlib.Path(path).read_bytes()
    if _is_zlib_header(raw[:2]):
        raw = zlib.decompress(raw)
    return results_from_dict(json.loads(raw.decode("utf-8")))


# -- delegation-graph drawings ---------------------------------------------------------


def _label(node) -> str:
    return str(node[1])


def to_ascii_tree(graph: DelegationGraph,
                  vulnerability_map: Optional[Mapping[DomainName, bool]] = None,
                  max_depth: int = 12) -> str:
    """Render the delegation graph as an indented dependency tree.

    Each node is printed once; dependencies that were already expanded
    elsewhere are marked with ``(see above)`` so cycles and shared
    sub-structures do not repeat.
    """
    vulnerability_map = vulnerability_map or {}
    lines: List[str] = []
    expanded: Set = set()

    def render(node, depth: int) -> None:
        indent = "  " * depth
        kind, entity = node
        suffix = ""
        if kind == NS_KIND and vulnerability_map.get(entity, False):
            suffix = "  [VULNERABLE]"
        tag = {NAME_KIND: "name", ZONE_KIND: "zone", NS_KIND: "ns"}[kind]
        if node in expanded:
            lines.append(f"{indent}{tag} {entity} (see above)")
            return
        lines.append(f"{indent}{tag} {entity}{suffix}")
        expanded.add(node)
        if depth >= max_depth:
            return
        for successor in sorted(graph.graph.successors(node),
                                key=lambda n: (n[0], str(n[1]))):
            render(successor, depth + 1)

    render(name_node(graph.target), 0)
    return "\n".join(lines)


def to_dot(graph: DelegationGraph,
           vulnerability_map: Optional[Mapping[DomainName, bool]] = None
           ) -> str:
    """Render the delegation graph as Graphviz DOT text."""
    vulnerability_map = vulnerability_map or {}
    lines = ["digraph delegation {", "  rankdir=LR;",
             '  node [fontsize=10];']
    for node in graph.graph.nodes:
        kind, entity = node
        attributes: Dict[str, str] = {"label": str(entity)}
        if kind == ZONE_KIND:
            attributes["shape"] = "box"
        elif kind == NAME_KIND:
            attributes["shape"] = "doubleoctagon"
        else:
            attributes["shape"] = "ellipse"
            if vulnerability_map.get(entity, False):
                attributes["style"] = "filled"
                attributes["fillcolor"] = "lightcoral"
        rendered = ", ".join(f'{key}="{value}"'
                             for key, value in attributes.items())
        lines.append(f'  "{kind}:{entity}" [{rendered}];')
    for source, destination in graph.graph.edges:
        lines.append(f'  "{source[0]}:{source[1]}" -> '
                     f'"{destination[0]}:{destination[1]}";')
    lines.append("}")
    return "\n".join(lines)


def to_graphml(graph: DelegationGraph, path: PathLike) -> pathlib.Path:
    """Write the graph as GraphML; returns the path written."""
    import networkx as nx

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    exportable = nx.DiGraph()
    for node in graph.graph.nodes:
        exportable.add_node(f"{node[0]}:{node[1]}", kind=node[0],
                            label=str(node[1]))
    for source, destination in graph.graph.edges:
        exportable.add_edge(f"{source[0]}:{source[1]}",
                            f"{destination[0]}:{destination[1]}")
    nx.write_graphml(exportable, path)
    return path


def write_dot(graph: DelegationGraph, path: PathLike,
              vulnerability_map: Optional[Mapping[DomainName, bool]] = None
              ) -> pathlib.Path:
    """Write DOT text to ``path``; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_dot(graph, vulnerability_map), encoding="utf-8")
    return path
