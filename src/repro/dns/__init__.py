"""DNS substrate: names, records, zones, authoritative servers, and resolvers.

This subpackage implements an in-process model of the Domain Name System that
is faithful to the delegation-based architecture described in RFC 1034/1035
and in Section 2 of the paper.  It provides:

* :class:`~repro.dns.name.DomainName` -- immutable, canonicalised domain names
  with the hierarchy operations (parent, ancestors, subdomain-of) used
  throughout the analysis.
* :class:`~repro.dns.records.ResourceRecord` and
  :class:`~repro.dns.records.RRSet` -- typed resource records.
* :class:`~repro.dns.zone.Zone` -- an authoritative zone holding records and
  child delegations (with optional glue).
* :class:`~repro.dns.server.AuthoritativeServer` -- a nameserver instance that
  serves one or more zones, advertises a BIND version banner, and can be
  failed or compromised for what-if analysis.
* :class:`~repro.dns.resolver.IterativeResolver` -- a resolver that walks
  delegation chains from the root exactly the way a real iterative resolver
  does, recording every server contacted, plus a *dependency walk* mode that
  enumerates the full transitive closure of servers that *could* be contacted
  (the paper's delegation graph).
"""

from repro.dns.errors import (
    DNSError,
    NameError_,
    NoSuchDomainError,
    ResolutionError,
    ServerFailureError,
    ZoneError,
)
from repro.dns.name import DomainName, ROOT_NAME
from repro.dns.rdtypes import RRType, RRClass, RCode, OpCode
from repro.dns.records import ResourceRecord, RRSet
from repro.dns.message import Question, Message, make_query, make_response
from repro.dns.zone import Zone, Delegation
from repro.dns.server import AuthoritativeServer, ServerStatus
from repro.dns.cache import ResolverCache, CacheEntry
from repro.dns.resolver import IterativeResolver, ResolutionTrace, ResolutionStep
from repro.dns.dnssec import ChainValidator, ValidationResult, ZoneSigner

__all__ = [
    "DNSError",
    "NameError_",
    "NoSuchDomainError",
    "ResolutionError",
    "ServerFailureError",
    "ZoneError",
    "DomainName",
    "ROOT_NAME",
    "RRType",
    "RRClass",
    "RCode",
    "OpCode",
    "ResourceRecord",
    "RRSet",
    "Question",
    "Message",
    "make_query",
    "make_response",
    "Zone",
    "Delegation",
    "AuthoritativeServer",
    "ServerStatus",
    "ResolverCache",
    "CacheEntry",
    "IterativeResolver",
    "ResolutionTrace",
    "ResolutionStep",
    "ChainValidator",
    "ValidationResult",
    "ZoneSigner",
]
