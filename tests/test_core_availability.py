"""Tests for :mod:`repro.core.availability`."""

import random

import networkx as nx
import pytest

from repro.dns.name import DomainName
from repro.core.availability import (
    AvailabilityAnalyzer,
    availability_security_tradeoff,
)
from repro.core.delegation import (
    DelegationGraph,
    DelegationGraphBuilder,
    name_node,
    ns_node,
    zone_node,
)


def two_level_graph(ns_per_zone=2):
    """name -> [tld zone -> registry NS], [leaf zone -> leaf NS]."""
    graph = nx.DiGraph()
    target = name_node("www.site.com")
    tld = zone_node("com")
    leaf = zone_node("site.com")
    graph.add_edge(target, tld)
    graph.add_edge(target, leaf)
    for index in range(ns_per_zone):
        registry = ns_node(f"ns{index}.registry.net")
        graph.add_edge(tld, registry)
        graph.add_edge(registry, tld)
        leaf_ns = ns_node(f"ns{index}.leaf.net")
        graph.add_edge(leaf, leaf_ns)
        graph.add_edge(leaf_ns, tld)
    return DelegationGraph("www.site.com", graph)


# -- analytic evaluation ---------------------------------------------------------------

def test_perfect_uptime_gives_certain_resolution():
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.resolution_probability(two_level_graph()) == \
        pytest.approx(1.0)


def test_zero_uptime_gives_no_resolution():
    analyzer = AvailabilityAnalyzer(0.0)
    assert analyzer.resolution_probability(two_level_graph()) == \
        pytest.approx(0.0)


def test_single_server_zones_follow_up_probability():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(0.9)
    # The TLD zone needs its single registry server, which in turn needs the
    # TLD zone (cycle -> counted once more as its own up-probability), and
    # the leaf zone needs its server plus the TLD chain for that server's
    # hostname: p^2 * (p * p^2) = p^5.
    expected = 0.9 ** 5
    assert analyzer.resolution_probability(graph) == pytest.approx(expected)


def test_redundancy_improves_availability():
    analyzer = AvailabilityAnalyzer(0.8)
    single = analyzer.resolution_probability(two_level_graph(ns_per_zone=1))
    double = analyzer.resolution_probability(two_level_graph(ns_per_zone=2))
    triple = analyzer.resolution_probability(two_level_graph(ns_per_zone=3))
    assert single < double < triple <= 1.0


def test_per_server_probability_map():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(
        {"ns0.leaf.net": 0.0}, default_up=1.0)
    assert analyzer.up_probability(DomainName("ns0.leaf.net")) == 0.0
    assert analyzer.resolution_probability(graph) == pytest.approx(0.0)


def test_invalid_probabilities_rejected():
    with pytest.raises(ValueError):
        AvailabilityAnalyzer(1.5)
    with pytest.raises(ValueError):
        AvailabilityAnalyzer({"ns.example.com": 0.5}, default_up=-0.1)


def test_empty_graph_has_zero_availability():
    graph = DelegationGraph("www.nowhere.zz", nx.DiGraph())
    analyzer = AvailabilityAnalyzer(0.99)
    assert analyzer.resolution_probability(graph) == 0.0
    assert not analyzer.resolvable_with_failures(graph, set())


# -- exact failure checks ------------------------------------------------------------------

def test_resolvable_with_failures_and_spof():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.resolvable_with_failures(graph, set())
    assert not analyzer.resolvable_with_failures(
        graph, {DomainName("ns0.leaf.net")})
    spof = analyzer.single_points_of_failure(graph)
    assert DomainName("ns0.leaf.net") in spof
    assert DomainName("ns0.registry.net") in spof


def test_redundant_zones_have_no_spof():
    graph = two_level_graph(ns_per_zone=2)
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.single_points_of_failure(graph) == frozenset()
    # Failing one server of each zone still resolves; failing both leaf
    # servers does not.
    assert analyzer.resolvable_with_failures(
        graph, {DomainName("ns0.leaf.net"), DomainName("ns0.registry.net")})
    assert not analyzer.resolvable_with_failures(
        graph, {DomainName("ns0.leaf.net"), DomainName("ns1.leaf.net")})


# -- Monte Carlo agreement ----------------------------------------------------------------------

def test_monte_carlo_close_to_analytic():
    graph = two_level_graph(ns_per_zone=2)
    analyzer = AvailabilityAnalyzer(0.9)
    analytic = analyzer.resolution_probability(graph)
    estimate = analyzer.monte_carlo(graph, samples=3000,
                                    rng=random.Random(5))
    assert abs(estimate - analytic) < 0.05


def test_monte_carlo_validation():
    graph = two_level_graph()
    analyzer = AvailabilityAnalyzer(0.9)
    with pytest.raises(ValueError):
        analyzer.monte_carlo(graph, samples=0)


def test_report_contains_all_fields():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(0.95)
    report = analyzer.report(graph, samples=200, rng=random.Random(1))
    assert report.name == DomainName("www.site.com")
    assert 0.0 < report.analytic < 1.0
    assert report.monte_carlo is not None
    assert report.samples == 200
    assert report.has_single_point_of_failure


# -- against resolver-built graphs and the trade-off summary -----------------------------------------

def test_mini_internet_availability(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    analyzer = AvailabilityAnalyzer(0.95)
    probability = analyzer.resolution_probability(graph)
    assert 0.8 < probability <= 1.0
    # The analytic value agrees with the exact evaluation under no failures.
    assert analyzer.resolvable_with_failures(graph, set())


def test_failing_whole_provider_kills_hosted_name(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    analyzer = AvailabilityAnalyzer(1.0)
    assert not analyzer.resolvable_with_failures(
        graph, {DomainName("ns1.hostco.com"), DomainName("ns2.hostco.com")})


def test_offsite_secondary_raises_availability(mini_internet):
    """uni.edu (own servers + partner secondary) survives the loss of both
    of its own servers -- the availability benefit the paper describes."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.uni.edu")
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.resolvable_with_failures(
        graph, {DomainName("dns1.uni.edu"), DomainName("dns2.uni.edu")})


def test_tcb_view_availability_matches_graph(mini_internet):
    """The zero-copy TCBView path equals the materialised-graph path."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    analyzer = AvailabilityAnalyzer(0.95)
    for name in ("www.example.com", "www.uni.edu", "www.hostco.com"):
        graph = builder.build(name)
        view = builder.tcb_view(name)
        assert analyzer.resolution_probability(view) == \
            pytest.approx(analyzer.resolution_probability(graph), abs=1e-15)
        assert analyzer.single_points_of_failure(view) == \
            analyzer.single_points_of_failure(graph)
        assert analyzer.monte_carlo(view, samples=100,
                                    rng=random.Random(3)) == \
            analyzer.monte_carlo(graph, samples=100, rng=random.Random(3))


def test_shared_memo_does_not_change_values(mini_internet):
    """Cross-name shared memos must be value-transparent (clean-only)."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    shared = AvailabilityAnalyzer(0.9, shared_memo={}, shared_spof_memo={})
    fresh = AvailabilityAnalyzer(0.9)
    names = ("www.example.com", "www.uni.edu", "www.partner.edu",
             "www.hostco.com", "www.example.com")
    for name in names:
        view = builder.tcb_view(name)
        assert shared.resolution_probability(view) == \
            pytest.approx(fresh.resolution_probability(view), abs=1e-15)
        assert shared.single_points_of_failure(view) == \
            fresh.single_points_of_failure(view)


def test_shared_memo_publishes_only_cycle_free_values():
    """Acyclic subtrees are published cross-name; cycle members never are.

    This mirrors the bottleneck memo's discipline: a value computed with a
    truncated dependency loop depends on where the recursion entered the
    loop, so only clean values may cross evaluation roots.
    """
    # Acyclic: name -> zone -> two leaf nameservers without further chains.
    acyclic = nx.DiGraph()
    target = name_node("www.flat.test")
    zone = zone_node("flat.test")
    acyclic.add_edge(target, zone)
    acyclic.add_edge(zone, ns_node("ns1.flat.test"))
    acyclic.add_edge(zone, ns_node("ns2.flat.test"))
    analyzer = AvailabilityAnalyzer(0.9, shared_memo={}, shared_spof_memo={})
    graph = DelegationGraph("www.flat.test", acyclic)
    value = analyzer.resolution_probability(graph)
    assert ns_node("ns1.flat.test") in analyzer.shared_memo
    assert target in analyzer.shared_memo
    assert analyzer.shared_memo[target] == pytest.approx(value)
    # Two redundant servers: no SPOF, and the (empty) kill set is published.
    assert analyzer.single_points_of_failure(graph) == frozenset()
    assert analyzer.shared_spof_memo[target] == frozenset()

    # Cyclic (mutual registry dependency): nothing tainted is published.
    cyclic_analyzer = AvailabilityAnalyzer(0.9, shared_memo={})
    cyclic = two_level_graph(ns_per_zone=2)
    cyclic_analyzer.resolution_probability(cyclic)
    assert name_node("www.site.com") not in cyclic_analyzer.shared_memo
    for index in range(2):
        assert ns_node(f"ns{index}.registry.net") not in \
            cyclic_analyzer.shared_memo


def test_kill_set_spof_matches_exhaustive(mini_internet):
    """The kill-set recursion equals one-failure-per-server re-evaluation."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    analyzer = AvailabilityAnalyzer(1.0)
    for name in ("www.example.com", "www.uni.edu", "www.partner.edu",
                 "www.hostco.com"):
        graph = builder.build(name)
        assert analyzer.single_points_of_failure(graph) == \
            analyzer.single_points_of_failure_exhaustive(graph)
    # And on the synthetic cyclic structure used above.
    for count in (1, 2, 3):
        graph = two_level_graph(ns_per_zone=count)
        assert analyzer.single_points_of_failure(graph) == \
            analyzer.single_points_of_failure_exhaustive(graph)


def test_kill_set_spof_skips_never_resolvable_nameservers():
    """A nameserver whose own chain crosses a dead zone is no alternative:
    the surviving server is a true SPOF and both SPOF paths must agree."""
    graph = nx.DiGraph()
    target = name_node("www.site.com")
    leaf = zone_node("site.com")
    graph.add_edge(target, leaf)
    dead_ns = ns_node("ns.dead.net")
    live_ns = ns_node("ns-b.live.net")
    graph.add_edge(leaf, dead_ns)
    graph.add_edge(leaf, live_ns)
    # The dead server's hostname chain needs a zone nobody serves.
    graph.add_edge(dead_ns, zone_node("dead.net"))
    graph.add_node(zone_node("dead.net"))
    view = DelegationGraph("www.site.com", graph)
    analyzer = AvailabilityAnalyzer(1.0)
    expected = frozenset({DomainName("ns-b.live.net")})
    assert analyzer.single_points_of_failure_exhaustive(view) == expected
    assert analyzer.single_points_of_failure(view) == expected


def test_tradeoff_summary(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graphs = [builder.build(name) for name in
              ("www.example.com", "www.uni.edu", "www.partner.edu")]
    summary = availability_security_tradeoff(graphs, up_probability=0.9)
    assert summary["names"] == 3
    assert summary["mean_tcb_size"] > 0
    assert 0.0 <= summary["mean_availability"] <= 1.0
    assert 0.0 <= summary["fraction_with_spof"] <= 1.0
