"""DNSSEC deployment experiments (the paper's Section 5 discussion).

The paper's closing argument: DNSSEC "can help, but continues to rely on the
same physical delegation chains as DNS during lookups.  While DNSSEC enables
detection of integrity violations, malicious agents could still easily
disrupt name service."  This module turns that qualitative statement into an
experiment:

1. :class:`DNSSECDeployment` signs a configurable fraction of the synthetic
   Internet's zones (TLD registries first, then leaf zones) and publishes DS
   records wherever the parent is also signed — modelling partial,
   island-ridden deployment.
2. :class:`DNSSECImpactAnalyzer` combines chain validation with the hijack
   classification of each surveyed name and reports, per deployment level,
   how many hijackable names become *detectable* (the attacker can no longer
   forge data unnoticed) versus how many remain silently hijackable — and
   notes that even detectable names remain subject to denial of service
   because the delegation chain itself is unchanged.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Optional

from repro.dns.dnssec import ChainValidator, ZoneSigner
from repro.dns.name import DomainName, NameLike, ROOT_NAME
from repro.dns.rdtypes import RRType
from repro.core.hijack import HIJACKABLE_CLASSIFICATIONS
from repro.core.survey import SurveyResults


@dataclasses.dataclass
class DNSSECDeployment:
    """Record of which zones were signed in one deployment experiment."""

    signer: ZoneSigner
    signed_zones: List[DomainName]
    ds_published: int
    fraction_requested: float

    @property
    def signed_count(self) -> int:
        """Number of zones signed."""
        return len(self.signed_zones)


def _deployment_score(seed: str, apex: DomainName) -> float:
    """A stable per-zone adoption score in [0, 1).

    A zone is signed by a ``fraction=f`` deployment iff its score is below
    ``f``.  Scoring each zone independently (instead of shuffling the zone
    list and taking a prefix) makes deployments *monotone under namespace
    growth*: raising the fraction with the same seed always signs a
    superset, even if zones were created or re-delegated in between — the
    property the incremental re-survey's journalled deployment progress
    relies on.
    """
    return random.Random(f"{seed}|deploy|{apex}").random()


def deploy_dnssec(internet, fraction: float = 1.0,
                  always_sign_tlds: bool = True,
                  rng: Optional[random.Random] = None,
                  seed: str = "repro-dnssec") -> DNSSECDeployment:
    """Sign ``fraction`` of the Internet's zones and publish DS records.

    TLD zones (and the root) are signed first when ``always_sign_tlds`` is
    true, mirroring how real deployment proceeded top-down; each lower zone
    adopts iff its stable per-zone score (seeded by ``seed`` and the apex)
    falls below ``fraction``, so roughly that share of zones signs and a
    larger fraction always signs a superset.  DS records are only
    published where the parent zone is itself signed, so partial deployment
    naturally produces "islands of security".  ``rng`` is accepted for
    backwards compatibility and ignored — sampling is a pure function of
    ``seed`` and the zone apexes.

    Signing is additive and cannot be undone, so deploying is only allowed
    when every zone an *earlier* deployment signed is signed by this one
    too (re-deploying the same fraction/seed is idempotent, and extending
    the fraction models deployment progress); a smaller or
    differently-seeded deployment over an already-signed Internet would
    validate against the old, larger deployment while reporting the new
    fraction, and is rejected instead.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    signer = ZoneSigner(seed=seed)

    zones = dict(internet.zones)
    tld_apexes = [apex for apex in zones if apex.depth <= 1]
    lower_apexes = [apex for apex in zones if apex.depth > 1]

    to_sign: List[DomainName] = []
    if always_sign_tlds:
        to_sign.extend(sorted(tld_apexes))
        to_sign.extend(apex for apex in sorted(lower_apexes)
                       if _deployment_score(seed, apex) < fraction)
    else:
        to_sign.extend(apex for apex in sorted(zones)
                       if _deployment_score(seed, apex) < fraction)

    planned = set(to_sign)
    stale = [apex for apex, zone in zones.items()
             if apex not in planned and
             zone.get_rrset(apex, RRType.DNSKEY) is not None]
    if stale:
        raise ValueError(
            f"{len(stale)} zone(s) (e.g. {sorted(stale)[0]}) already carry "
            f"DNSKEYs from a larger or different deployment; signing is "
            f"additive, so this fraction={fraction} deployment would "
            f"misreport the world it validates — use a fresh Internet")

    for apex in to_sign:
        signer.sign_zone(zones[apex])

    ds_published = 0
    for apex in to_sign:
        if apex.is_root:
            continue
        parent_apex = _enclosing_signed_parent(apex, signer)
        if parent_apex is None:
            continue
        parent_zone = zones.get(parent_apex)
        if parent_zone is None:
            continue
        if signer.publish_ds(parent_zone, apex) is not None:
            ds_published += 1

    return DNSSECDeployment(signer=signer, signed_zones=sorted(to_sign),
                            ds_published=ds_published,
                            fraction_requested=fraction)


def _enclosing_signed_parent(apex: DomainName,
                             signer: ZoneSigner) -> Optional[DomainName]:
    """The nearest signed ancestor zone that could hold the DS record."""
    for ancestor in apex.ancestors(include_root=True):
        if ancestor == apex:
            continue
        if signer.is_signed(ancestor) or ancestor == ROOT_NAME:
            return ancestor if signer.is_signed(ancestor) else None
    return None


@dataclasses.dataclass
class DNSSECImpactReport:
    """Aggregate outcome of a deployment experiment over surveyed names."""

    deployment_fraction: float
    names_checked: int
    secure: int
    insecure: int
    hijackable: int
    hijackable_detected: int
    hijackable_undetected: int

    @property
    def fraction_secure(self) -> float:
        """Fraction of checked names with a full chain of trust."""
        return self.secure / self.names_checked if self.names_checked else 0.0

    @property
    def fraction_hijackable_undetected(self) -> float:
        """Fraction of checked names still silently hijackable."""
        if not self.names_checked:
            return 0.0
        return self.hijackable_undetected / self.names_checked

    def to_dict(self) -> Dict[str, float]:
        """Flat representation for reports and benches."""
        return {
            "deployment_fraction": self.deployment_fraction,
            "names_checked": float(self.names_checked),
            "fraction_secure": self.fraction_secure,
            "hijackable": float(self.hijackable),
            "hijackable_detected": float(self.hijackable_detected),
            "hijackable_undetected": float(self.hijackable_undetected),
        }


def impact_report_from_results(results: SurveyResults,
                               deployment_fraction: Optional[float] = None
                               ) -> DNSSECImpactReport:
    """Aggregate a :class:`DNSSECImpactReport` from engine-pass columns.

    When the survey ran with the ``dnssec`` analysis pass, every record
    already carries ``dnssec_status`` / ``dnssec_detected`` extras; this
    folds them into the same report :class:`DNSSECImpactAnalyzer` produces,
    without re-validating a single chain.  ``deployment_fraction`` defaults
    to the fraction recorded in the survey metadata (if any).
    """
    if deployment_fraction is None:
        deployment_fraction = float(
            results.metadata.get("dnssec_fraction", 1.0))
    records = [record for record in results.resolved_records()
               if "dnssec_status" in record.extras]
    secure = insecure = 0
    hijackable = detected = undetected = 0
    for record in records:
        is_secure = record.extras["dnssec_status"] == "secure"
        if is_secure:
            secure += 1
        else:
            insecure += 1
        if record.classification in HIJACKABLE_CLASSIFICATIONS:
            hijackable += 1
            if is_secure:
                detected += 1
            else:
                undetected += 1
    return DNSSECImpactReport(
        deployment_fraction=deployment_fraction,
        names_checked=len(records), secure=secure, insecure=insecure,
        hijackable=hijackable, hijackable_detected=detected,
        hijackable_undetected=undetected)


class DNSSECImpactAnalyzer:
    """Measures what a DNSSEC deployment buys against the survey's findings."""

    def __init__(self, internet, deployment: DNSSECDeployment):
        self.internet = internet
        self.deployment = deployment
        self._validator = ChainValidator(internet.make_resolver(),
                                         seed=deployment.signer.seed)

    def validate_name(self, name: NameLike):
        """Chain-of-trust validation for a single name."""
        return self._validator.validate(name)

    def analyze(self, results: SurveyResults,
                names: Optional[Iterable[NameLike]] = None,
                max_names: Optional[int] = None) -> DNSSECImpactReport:
        """Combine chain validation with the survey's hijack classification.

        A name counts as *hijackable* if the survey classified it as
        completely hijackable or DoS-assisted; it counts as *detected* if
        its chain of trust is secure (a forged answer would fail
        validation), and *undetected* otherwise.
        """
        records = results.resolved_records()
        if names is not None:
            wanted = {DomainName(name) for name in names}
            records = [record for record in records if record.name in wanted]
        if max_names is not None:
            records = records[:max_names]

        secure = insecure = 0
        hijackable = detected = undetected = 0
        for record in records:
            validation = self.validate_name(record.name)
            if validation.is_secure:
                secure += 1
            else:
                insecure += 1
            is_hijackable = record.classification in \
                HIJACKABLE_CLASSIFICATIONS
            if is_hijackable:
                hijackable += 1
                if validation.is_secure:
                    detected += 1
                else:
                    undetected += 1
        return DNSSECImpactReport(
            deployment_fraction=self.deployment.fraction_requested,
            names_checked=len(records), secure=secure, insecure=insecure,
            hijackable=hijackable, hijackable_detected=detected,
            hijackable_undetected=undetected)
