"""Persistence of survey results as JSON snapshots.

The paper kept an active web site with the raw results of its July 2004
snapshot.  :func:`save_results` / :func:`load_results` play the same role for
this reproduction: they serialise a :class:`~repro.core.survey.SurveyResults`
to a self-describing JSON document (and back) so that expensive surveys can
be archived, diffed across generator configurations, and re-analysed without
re-running resolution.

Snapshots are the **name boundary** of the integer-interned graph core
(:mod:`repro.core.graphcore`): integer node ids and NS-slot bitsets are
builder-local and never serialised — every server set reaching this module
has already been materialised back to :class:`~repro.dns.name.DomainName`
(and is written as sorted presentation strings), which is what keeps
snapshots byte-identical across execution backends and across internal
representation changes.  Pass ``finalize`` metadata (e.g. the ``value``
pass's ranking summary) nests plain JSON values inside ``metadata`` and
round-trips unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Tuple, Union

from repro.dns.name import DomainName
from repro.core.survey import NameRecord, SurveyResults
from repro.vulns.bindversion import BindVersion
from repro.vulns.fingerprint import FingerprintResult

#: Format version written into every snapshot for forwards compatibility.
SNAPSHOT_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def results_to_dict(results: SurveyResults) -> Dict[str, object]:
    """Convert survey results to a JSON-serialisable dictionary."""
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "metadata": dict(results.metadata),
        "records": [record.to_dict() for record in results.records],
        "server_names_controlled": {
            str(host): count
            for host, count in results.server_names_controlled.items()},
        "vulnerable_servers": sorted(str(host)
                                     for host in results.vulnerable_servers),
        "compromisable_servers": sorted(
            str(host) for host in results.compromisable_servers),
        "popular_names": sorted(str(name) for name in results.popular_names),
        "fingerprints": {
            str(host): {
                "banner": result.banner,
                "reachable": result.reachable,
                "vulnerabilities": list(result.vulnerabilities),
            }
            for host, result in results.fingerprints.items()},
    }


def results_from_dict(payload: Dict[str, object]) -> SurveyResults:
    """Rebuild survey results from a dictionary produced by
    :func:`results_to_dict`."""
    version = payload.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version: {version!r}")

    records = []
    for raw in payload.get("records", []):
        records.append(NameRecord(
            name=DomainName(raw["name"]),
            tld=raw["tld"],
            category=raw["category"],
            is_popular=bool(raw["is_popular"]),
            resolved=bool(raw["resolved"]),
            tcb_size=int(raw["tcb_size"]),
            in_bailiwick=int(raw["in_bailiwick"]),
            vulnerable_in_tcb=int(raw["vulnerable_in_tcb"]),
            compromisable_in_tcb=int(raw["compromisable_in_tcb"]),
            safety_percentage=float(raw["safety_percentage"]),
            mincut_size=int(raw["mincut_size"]),
            mincut_safe=int(raw["mincut_safe"]),
            mincut_vulnerable=int(raw["mincut_vulnerable"]),
            classification=raw["classification"],
            tcb_servers={DomainName(s) for s in raw.get("tcb_servers", [])},
            mincut_servers={DomainName(s)
                            for s in raw.get("mincut_servers", [])},
            extras=dict(raw.get("extras", {})),
        ))

    fingerprints = {}
    for host_text, raw in payload.get("fingerprints", {}).items():
        hostname = DomainName(host_text)
        banner = raw.get("banner")
        fingerprints[hostname] = FingerprintResult(
            hostname=hostname, banner=banner,
            version=BindVersion.parse(banner),
            reachable=bool(raw.get("reachable", True)),
            vulnerabilities=list(raw.get("vulnerabilities", [])))

    return SurveyResults(
        records=records,
        server_names_controlled={
            DomainName(host): int(count)
            for host, count in payload.get("server_names_controlled",
                                           {}).items()},
        vulnerable_servers={DomainName(host)
                            for host in payload.get("vulnerable_servers", [])},
        compromisable_servers={
            DomainName(host)
            for host in payload.get("compromisable_servers", [])},
        fingerprints=fingerprints,
        popular_names={DomainName(name)
                       for name in payload.get("popular_names", [])},
        metadata=dict(payload.get("metadata", {})),
    )


def save_results(results: SurveyResults, path: PathLike,
                 indent: int = 0) -> pathlib.Path:
    """Write survey results to ``path`` as JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = results_to_dict(results)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent or None, sort_keys=True)
    return path


def load_results(path: PathLike) -> SurveyResults:
    """Read survey results previously written by :func:`save_results`."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return results_from_dict(payload)


# -- snapshot diffing ---------------------------------------------------------------

#: Built-in numeric per-name fields compared by :func:`diff_results`.
DIFF_NUMERIC_FIELDS = ("tcb_size", "vulnerable_in_tcb", "mincut_size")

#: Built-in categorical per-name fields compared by :func:`diff_results`.
DIFF_CATEGORICAL_FIELDS = ("classification",)


@dataclasses.dataclass
class NameChange:
    """One name whose record differs between two snapshots."""

    name: DomainName
    fields: Dict[str, Tuple[object, object]]  # field -> (before, after)

    def magnitude(self) -> float:
        """Size of the change, for ranking (numeric deltas dominate)."""
        largest = 0.0
        for before, after in self.fields.values():
            if isinstance(before, (int, float)) and \
                    isinstance(after, (int, float)) and \
                    not isinstance(before, bool) and \
                    not isinstance(after, bool):
                largest = max(largest, abs(float(after) - float(before)))
            else:
                largest = max(largest, 1.0)
        return largest


@dataclasses.dataclass
class SnapshotDiff:
    """Per-name churn between two survey snapshots.

    Snapshots are deterministic (sorted keys, backend-independent), so any
    difference reported here comes from the worlds surveyed — a different
    generator configuration, BIND catalogue, or deployment — never from the
    execution backend.

    Names present in only one snapshot are first-class changes: each
    contributes a :class:`NameChange` whose ``presence`` field records the
    add/removal, so ``changed``/:meth:`top_movers` — and equivalence checks
    built on :attr:`is_identical` — see namespace churn, not just field
    churn on the intersection.
    """

    only_in_a: List[DomainName]
    only_in_b: List[DomainName]
    common: int
    numeric: Dict[str, Dict[str, float]]      # field -> delta_stats
    transitions: Dict[str, Dict[Tuple[str, str], int]]
    changes: List[NameChange]

    @property
    def changed(self) -> int:
        """Number of names whose records differ (adds/removals included)."""
        return len(self.changes)

    @property
    def is_identical(self) -> bool:
        """True when the snapshots agree on every name and compared field.

        The check an incremental re-survey's delta-vs-full equivalence
        uses: no field churn, no names added, no names removed.
        """
        return not self.changes and not self.only_in_a and not self.only_in_b

    def top_movers(self, count: int = 10) -> List[NameChange]:
        """The most-changed names, largest magnitude first."""
        ordered = sorted(self.changes,
                         key=lambda change: (-change.magnitude(),
                                             change.name))
        return ordered[:count]


def _diff_fields(results: SurveyResults) -> Tuple[Tuple[str, ...],
                                                  Tuple[str, ...]]:
    """Numeric and categorical fields to compare, extras included."""
    numeric = list(DIFF_NUMERIC_FIELDS)
    categorical = list(DIFF_CATEGORICAL_FIELDS)
    for column in results.extras_columns():
        values = results.extra_values(column, resolved_only=False)
        if values and all(isinstance(v, (int, float)) and
                          not isinstance(v, bool) for v in values):
            numeric.append(column)
        else:
            categorical.append(column)
    return tuple(numeric), tuple(categorical)


def _field_value(record, field: str):
    if field in record.extras:
        return record.extras[field]
    return getattr(record, field, None)


def diff_results(a: SurveyResults, b: SurveyResults) -> SnapshotDiff:
    """Compare two survey results name by name.

    Numeric fields (TCB size, vulnerable dependencies, min-cut size, and
    any numeric pass column such as ``availability``) get churn statistics
    via :func:`repro.core.report.delta_stats`; categorical fields
    (classification, ``dnssec_status``, ...) get transition counts.  Fields
    are drawn from snapshot *a*'s schema so diffing against an older
    snapshot without pass columns degrades gracefully.
    """
    from repro.core.report import delta_stats

    index_a = {record.name: record for record in a.records}
    index_b = {record.name: record for record in b.records}
    shared = sorted(set(index_a) & set(index_b))
    numeric_fields, categorical_fields = _diff_fields(a)

    numeric: Dict[str, Dict[str, float]] = {}
    pairs: Dict[str, Tuple[List[float], List[float]]] = \
        {field: ([], []) for field in numeric_fields}
    transitions: Dict[str, Dict[Tuple[str, str], int]] = {}
    changes: List[NameChange] = []

    for name in shared:
        record_a, record_b = index_a[name], index_b[name]
        changed_fields: Dict[str, Tuple[object, object]] = {}
        for field in numeric_fields:
            before = _field_value(record_a, field)
            after = _field_value(record_b, field)
            if before is None or after is None:
                continue
            pairs[field][0].append(float(before))
            pairs[field][1].append(float(after))
            if before != after:
                changed_fields[field] = (before, after)
        for field in categorical_fields:
            before = _field_value(record_a, field)
            after = _field_value(record_b, field)
            if before is None or after is None:
                continue
            if before != after:
                changed_fields[field] = (before, after)
                field_transitions = transitions.setdefault(field, {})
                key = (str(before), str(after))
                field_transitions[key] = field_transitions.get(key, 0) + 1
        if changed_fields:
            changes.append(NameChange(name=name, fields=changed_fields))

    for field, (before_values, after_values) in pairs.items():
        if before_values:
            numeric[field] = delta_stats(before_values, after_values)

    only_in_a = sorted(set(index_a) - set(index_b))
    only_in_b = sorted(set(index_b) - set(index_a))
    # Adds/removals are changes too: surface them through the same
    # NameChange/transition machinery the per-field churn uses.
    for name in only_in_a:
        changes.append(NameChange(name=name,
                                  fields={"presence": ("present", "absent")}))
    for name in only_in_b:
        changes.append(NameChange(name=name,
                                  fields={"presence": ("absent", "present")}))
    if only_in_a or only_in_b:
        presence = transitions.setdefault("presence", {})
        if only_in_a:
            presence[("present", "absent")] = len(only_in_a)
        if only_in_b:
            presence[("absent", "present")] = len(only_in_b)

    return SnapshotDiff(
        only_in_a=only_in_a, only_in_b=only_in_b,
        common=len(shared), numeric=numeric, transitions=transitions,
        changes=changes)
