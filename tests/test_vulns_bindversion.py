"""Tests for :mod:`repro.vulns.bindversion`."""

import pytest
from hypothesis import given, strategies as st

from repro.vulns.bindversion import BindVersion, version_range


@pytest.mark.parametrize("banner,expected", [
    ("BIND 8.2.4", (8, 2, 4)),
    ("BIND 8.2.4-REL", (8, 2, 4)),
    ("9.2.1", (9, 2, 1)),
    ("named 8.3.1", (8, 3, 1)),
    ("bind-9.2.3-P1", (9, 2, 3)),
    ("BIND 4.9", (4, 9, 0)),
    ("8.2.2-P5", (8, 2, 2)),
    ("BIND 9.2.4rc2", (9, 2, 4)),
])
def test_parse_known_banners(banner, expected):
    version = BindVersion.parse(banner)
    assert version is not None
    assert version.key == expected


@pytest.mark.parametrize("banner", [None, "", "SECRET", "go away",
                                    "surely not dns software"])
def test_parse_unparseable_banners(banner):
    assert BindVersion.parse(banner) is None


def test_ordering_within_branch():
    assert BindVersion.parse("8.2.3") < BindVersion.parse("8.2.4")
    assert BindVersion.parse("8.2.4") < BindVersion.parse("8.3.0")
    assert BindVersion.parse("8.2.4") <= BindVersion.parse("BIND 8.2.4-REL")
    assert BindVersion.parse("9.2.0") > BindVersion.parse("8.4.7")


def test_equality_ignores_suffix():
    assert BindVersion.parse("8.2.4-REL") == BindVersion.parse("8.2.4")
    assert hash(BindVersion.parse("8.2.4-REL")) == hash(BindVersion.parse("8.2.4"))


def test_in_range_inclusive():
    low, high = version_range("8.2.0", "8.2.6")
    assert BindVersion.parse("8.2.0").in_range(low, high)
    assert BindVersion.parse("8.2.6").in_range(low, high)
    assert BindVersion.parse("8.2.4").in_range(low, high)
    assert not BindVersion.parse("8.3.0").in_range(low, high)
    assert not BindVersion.parse("8.1.9").in_range(low, high)


def test_same_branch():
    assert BindVersion.parse("8.2.4").same_branch(BindVersion.parse("8.4.7"))
    assert not BindVersion.parse("8.2.4").same_branch(BindVersion.parse("9.2.4"))


def test_version_range_rejects_garbage_and_inversion():
    with pytest.raises(ValueError):
        version_range("not a version", "8.2.6")
    with pytest.raises(ValueError):
        version_range("8.2.6", "8.2.0")


def test_str_roundtrips_core_fields():
    version = BindVersion.parse("BIND 8.2.4-REL")
    assert str(version) == "8.2.4-REL"
    assert BindVersion.parse(str(version)) == version


@given(st.integers(min_value=0, max_value=20),
       st.integers(min_value=0, max_value=20),
       st.integers(min_value=0, max_value=20))
def test_parse_roundtrip_property(major, minor, patch):
    banner = f"BIND {major}.{minor}.{patch}"
    version = BindVersion.parse(banner)
    assert version.key == (major, minor, patch)
    assert BindVersion.parse(str(version)) == version


@given(st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9)),
       st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9)))
def test_ordering_matches_tuple_ordering(a, b):
    va = BindVersion(*a)
    vb = BindVersion(*b)
    assert (va < vb) == (a < b)
    assert (va == vb) == (a == b)
