"""Bottleneck (min-cut) analysis of delegation graphs (Figure 7).

Section 3.2 distinguishes partial hijacks (divert *some* queries) from
complete hijacks (divert *all* queries) and measures the latter by computing
"the minimum number of nameservers that need to be attacked in order to
completely take over a domain ... determined by computing a min-cut of the
delegation graph".

The delegation graph is an AND/OR structure: resolving a name requires every
zone on its delegation path (AND), but any single nameserver suffices for
each zone (OR), and a nameserver can be neutralised either by attacking the
machine itself or by taking over the resolution of its hostname
(recursively).  The minimum attack set therefore satisfies the recursion::

    block(name)  = min over zones Z on name's path of block_zone(Z)
    block_zone(Z)= sum over nameservers H of Z of
                     min(attack(H), block(H.hostname))

:class:`BottleneckAnalyzer` evaluates this recursion directly on the
delegation graph with memoisation and cycle guards.  Two weightings are
provided:

* **unweighted** — every server costs 1; the resulting total is the paper's
  "average min-cut of 2.5 nameservers".
* **vulnerability-aware** — servers with a known exploit cost (0 safe, 1
  total) while safe servers cost (1 safe, 1 total) and costs compare
  lexicographically; the optimal cut then minimises the number of *safe*
  servers the attacker still has to deal with, which is exactly the
  "number of safe bottleneck nameservers" plotted in Figure 7.

Shared dependencies make the summed recursion an upper bound on the true
optimum (the same server counted via two branches is paid twice), so the
reported cut is conservative; on the survey graphs the bound is tight for
the dominant pattern (the weakest zone is the name's own NS set).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.dns.name import DomainName
from repro.core.delegation import DelegationGraph, NodeKey, name_node

#: Cost value representing "cannot be blocked" (e.g. behind the trusted root).
_INFINITY = (10 ** 9, 10 ** 9)


@dataclasses.dataclass
class BottleneckResult:
    """The optimal attack set for one name under one weighting."""

    name: DomainName
    cut_servers: FrozenSet[DomainName]
    safe_in_cut: int
    vulnerable_in_cut: int
    feasible: bool = True

    @property
    def size(self) -> int:
        """Total number of servers in the cut."""
        return len(self.cut_servers)

    @property
    def fully_vulnerable(self) -> bool:
        """True if the cut consists solely of vulnerable servers.

        These are the names the paper reports as completely hijackable with
        scripted attacks alone (about 30 % of the survey).
        """
        return self.feasible and self.size > 0 and self.safe_in_cut == 0

    @property
    def one_safe_server(self) -> bool:
        """True if exactly one safe server stands in the way.

        The paper notes another 10 % of names fall in this category, where a
        DoS on that one safe server plus compromise of the vulnerable ones
        completes the hijack.
        """
        return self.feasible and self.safe_in_cut == 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation used by snapshots."""
        return {
            "name": str(self.name),
            "size": self.size,
            "safe_in_cut": self.safe_in_cut,
            "vulnerable_in_cut": self.vulnerable_in_cut,
            "feasible": self.feasible,
            "servers": sorted(str(s) for s in self.cut_servers),
        }


class BottleneckAnalyzer:
    """Computes minimum attack sets over delegation graphs.

    Parameters
    ----------
    vulnerability_map:
        Per-hostname "has an exploitable hole" flags; hosts missing from the
        map count as safe.
    vulnerability_aware:
        Whether the cut minimises the number of *safe* servers (lexicographic
        cost) or just its total size.
    shared_memo:
        Optional cross-call memo, used by the survey engine to reuse blocking
        costs across the thousands of names that share a universe graph.
        Only *clean* results — computed without truncating a dependency cycle
        and without consuming a truncation-tainted value — are published to
        it, because those are the only results independent of the path the
        recursion took to reach the node (a node on a cycle always observes
        its own truncation and therefore never qualifies).  Entries must be
        purged when the underlying graph or the vulnerability flags of
        already-analysed hosts change; the engine registers the memo with the
        builder's :class:`~repro.core.delegation.ClosureIndex` for exactly
        that.
    """

    def __init__(self, vulnerability_map: Optional[Mapping[DomainName, bool]] = None,
                 vulnerability_aware: bool = True,
                 shared_memo: Optional[Dict[NodeKey, Tuple[Tuple[int, int],
                                            FrozenSet[DomainName]]]] = None):
        self.vulnerability_map = dict(vulnerability_map or {})
        self.vulnerability_aware = vulnerability_aware
        self.shared_memo = shared_memo
        self._taint_events = 0
        self._tainted: Set[NodeKey] = set()

    # -- public -------------------------------------------------------------------

    def analyze(self, graph: DelegationGraph) -> BottleneckResult:
        """Compute the optimal attack set for ``graph``'s target name."""
        memo: Dict[NodeKey, Tuple[Tuple[int, int], FrozenSet[DomainName]]] = {}
        self._taint_events = 0
        self._tainted = set()
        cost, servers = self._block_name(graph, name_node(graph.target),
                                         memo, frozenset())
        feasible = cost < _INFINITY
        if not feasible:
            return BottleneckResult(name=graph.target, cut_servers=frozenset(),
                                    safe_in_cut=0, vulnerable_in_cut=0,
                                    feasible=False)
        safe = sum(1 for host in servers if not self._is_vulnerable(host))
        vulnerable = len(servers) - safe
        return BottleneckResult(name=graph.target, cut_servers=servers,
                                safe_in_cut=safe, vulnerable_in_cut=vulnerable,
                                feasible=True)

    def analyze_unweighted(self, graph: DelegationGraph) -> BottleneckResult:
        """Convenience: the cut that minimises total size regardless of vulns."""
        analyzer = BottleneckAnalyzer(self.vulnerability_map,
                                      vulnerability_aware=False)
        return analyzer.analyze(graph)

    # -- cost model ------------------------------------------------------------------

    def _is_vulnerable(self, hostname: DomainName) -> bool:
        return bool(self.vulnerability_map.get(hostname, False))

    # -- recursion ---------------------------------------------------------------------

    def _block_name(self, graph: DelegationGraph, node: NodeKey,
                    memo: Dict, in_progress: FrozenSet[NodeKey]
                    ) -> Tuple[Tuple[int, int], FrozenSet[DomainName]]:
        """Cheapest way to block every resolution path of a name/host node."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                # The consumer inherits this value's context-dependence.
                self._taint_events += 1
            return cached
        shared = self.shared_memo
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # Cyclic dependency (mutual secondaries): this branch cannot be
            # used to block the node more cheaply than attacking servers
            # directly, so treat it as unblockable here.
            self._taint_events += 1
            return _INFINITY, frozenset()
        in_progress = in_progress | {node}
        events_before = self._taint_events

        zones = graph.zones_of(node)
        if not zones:
            result = (_INFINITY, frozenset())
            memo[node] = result
            if shared is not None:
                # A node with no zone dependencies is unblockable regardless
                # of how the recursion reached it.
                shared[node] = result
            return result

        best_cost: Tuple[int, int] = _INFINITY
        best_servers: FrozenSet[DomainName] = frozenset()
        for zone in zones:
            cost, servers = self._block_zone(graph, zone, memo, in_progress)
            if cost < best_cost:
                best_cost, best_servers = cost, servers
        result = (best_cost, best_servers)
        if best_cost < _INFINITY:
            memo[node] = result
            if self._taint_events == events_before:
                if shared is not None:
                    shared[node] = result
            else:
                self._tainted.add(node)
        return result

    def _block_zone(self, graph: DelegationGraph, zone: NodeKey,
                    memo: Dict, in_progress: FrozenSet[NodeKey]
                    ) -> Tuple[Tuple[int, int], FrozenSet[DomainName]]:
        """Cheapest way to control every nameserver delegated for a zone."""
        nameservers = graph.nameservers_of_zone(zone)
        if not nameservers:
            return _INFINITY, frozenset()
        total = (0, 0)
        servers: Set[DomainName] = set()
        # Direct attack cost, inlined (this loop runs millions of times per
        # survey): compromising an already-vulnerable server is "free" in
        # the primary component (no safe server consumed) but still counts
        # toward the cut size in the secondary, so ties prefer smaller cuts.
        vulnerability_aware = self.vulnerability_aware
        vulnerability_get = self.vulnerability_map.get
        for ns in nameservers:
            hostname = ns[1]
            if vulnerability_aware and vulnerability_get(hostname, False):
                direct_cost = (0, 1)
            else:
                direct_cost = (1, 1)
            indirect_cost, indirect_servers = self._block_name(
                graph, ns, memo, in_progress)
            if indirect_cost < direct_cost:
                choice_cost, choice_servers = indirect_cost, indirect_servers
            else:
                choice_cost, choice_servers = direct_cost, frozenset({hostname})
            if choice_cost >= _INFINITY:
                return _INFINITY, frozenset()
            # Servers already selected for this zone's cut are not paid twice.
            new_servers = set(choice_servers) - servers
            if len(new_servers) != len(choice_servers):
                choice_cost = self._cost_of(new_servers)
            total = (total[0] + choice_cost[0], total[1] + choice_cost[1])
            servers.update(new_servers)
            if total >= _INFINITY:
                return _INFINITY, frozenset()
        return total, frozenset(servers)

    def _cost_of(self, servers: Set[DomainName]) -> Tuple[int, int]:
        """Combined cost of a concrete server set (used when deduplicating)."""
        safe = sum(1 for host in servers if not (
            self.vulnerability_aware and self._is_vulnerable(host)))
        return (safe if self.vulnerability_aware else len(servers), len(servers))
