"""repro: a reproduction of "Perils of Transitive Trust in the Domain Name
System" (Ramasubramanian & Sirer, IMC 2005).

The package provides, from the bottom up:

* :mod:`repro.dns` -- an RFC 1034/1035-faithful in-process DNS substrate
  (names, records, zones, authoritative servers, iterative resolution);
* :mod:`repro.netsim` -- the simulated network that carries queries, with
  latency and failure injection;
* :mod:`repro.topology` -- a synthetic Internet generator standing in for the
  paper's July 2004 crawl, plus the simulated Yahoo!/DMOZ web directory;
* :mod:`repro.vulns` -- the BIND vulnerability catalogue and ``version.bind``
  fingerprinting;
* :mod:`repro.core` -- the paper's contribution: delegation graphs, trusted
  computing bases, bottleneck (min-cut) analysis, hijack assessment and
  simulation, nameserver value ranking, and the survey orchestrator.

Quick start::

    from repro import GeneratorConfig, InternetGenerator, Survey

    internet = InternetGenerator(GeneratorConfig(sld_count=400)).generate()
    results = Survey(internet).run()
    print(results.headline())
"""

from repro.topology.generator import (
    GeneratorConfig,
    InternetGenerator,
    SyntheticInternet,
)
from repro.core.survey import Survey, SurveyResults, NameRecord
from repro.core.delegation import DelegationGraph, DelegationGraphBuilder
from repro.core.passes import (
    AnalysisPass,
    AvailabilityPass,
    DNSSECImpactPass,
    build_passes,
)
from repro.core.tcb import TCBReport, compute_tcb_report
from repro.core.mincut import BottleneckAnalyzer, BottleneckResult
from repro.core.hijack import HijackAnalyzer, HijackSimulator
from repro.core.value import NameserverValueAnalyzer
from repro.vulns.database import VulnerabilityDatabase, default_database

__version__ = "1.0.0"

__all__ = [
    "GeneratorConfig",
    "InternetGenerator",
    "SyntheticInternet",
    "Survey",
    "SurveyResults",
    "NameRecord",
    "DelegationGraph",
    "DelegationGraphBuilder",
    "AnalysisPass",
    "AvailabilityPass",
    "DNSSECImpactPass",
    "build_passes",
    "TCBReport",
    "compute_tcb_report",
    "BottleneckAnalyzer",
    "BottleneckResult",
    "HijackAnalyzer",
    "HijackSimulator",
    "NameserverValueAnalyzer",
    "VulnerabilityDatabase",
    "default_database",
    "__version__",
]
