"""Network substrate: hosts, addressing, transport, latency, and failures.

The DNS substrate needs something to carry queries between a resolver and
authoritative servers.  :class:`~repro.netsim.network.SimulatedNetwork`
provides that transport: it registers hosts (nameservers) under their IP
addresses and hostnames, delivers query messages to them, models per-region
latency, advances a simulated clock, and supports failure injection (downed
servers, partitioned regions, saturating DoS) used by the what-if analyses.
"""

from repro.netsim.ip import IPv4Allocator, is_valid_ipv4
from repro.netsim.latency import LatencyModel, REGION_RTT_MS
from repro.netsim.network import SimulatedNetwork, NetworkStats
from repro.netsim.failures import FailureInjector, FailureScenario

__all__ = [
    "IPv4Allocator",
    "is_valid_ipv4",
    "LatencyModel",
    "REGION_RTT_MS",
    "SimulatedNetwork",
    "NetworkStats",
    "FailureInjector",
    "FailureScenario",
]
