"""Headline statistics of Section 3 (the survey summary numbers).

Paper: 593,160 names over 166,771 nameservers; a name depends on 46 servers
on average (median 26) of which only 2.2 are administered by the name owner.
"""

from conftest import PAPER, comparison_rows


def test_headline_statistics(benchmark, paper_survey, figure_writer):
    headline = benchmark(paper_survey.headline)

    figure_writer.write(
        "section3_headline", "Section 3 headline statistics",
        comparison_rows(headline, [
            "names_surveyed", "servers_discovered", "mean_tcb_size",
            "median_tcb_size", "mean_in_bailiwick",
            "vulnerable_server_fraction",
            "fraction_names_with_vulnerable_dependency",
            "fraction_completely_hijackable", "mean_mincut_size"]))

    # Shape assertions: the scaled-down survey must reproduce the paper's
    # qualitative findings even though absolute counts differ.
    assert headline["names_resolved"] >= 0.95 * headline["names_surveyed"]
    assert 25 <= headline["mean_tcb_size"] <= 80
    assert 15 <= headline["median_tcb_size"] <= 50
    assert headline["mean_tcb_size"] > headline["median_tcb_size"]
    assert headline["mean_in_bailiwick"] <= 4.0
    assert headline["mean_tcb_size"] > \
        8 * headline["mean_in_bailiwick"], \
        "most of the TCB must lie outside the owner's control"


def test_headline_amplification_shape(paper_survey):
    """17 % vulnerable servers poison ~45 % of names (amplification >1)."""
    headline = paper_survey.headline()
    server_fraction = headline["vulnerable_server_fraction"]
    name_fraction = headline["fraction_names_with_vulnerable_dependency"]
    assert 0.10 <= server_fraction <= 0.35
    assert name_fraction >= 1.5 * server_fraction
    assert name_fraction <= 0.9
