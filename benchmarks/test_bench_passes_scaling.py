"""Availability analysis on TCBView vs. the legacy graph-copy path.

Before the AnalysisPass framework, studying the paper's availability side
meant materialising a full per-name ``DelegationGraph`` (``nx.descendants``
plus a subgraph copy) and walking it with a fresh analyzer — which is why
`core/availability` could only run at toy scale.  As an engine pass the same
analysis reads the zero-copy ``TCBView`` backed by the memoized closure
index, shares cycle-safe availability/kill-set memos across names, and gets
the engine's per-chain cache on top.  These benches pin the difference down
and assert the acceptance floor.
"""

import time

from repro.core.availability import AvailabilityAnalyzer
from repro.core.delegation import DelegationGraphBuilder
from repro.core.engine import EngineConfig, SurveyEngine

from conftest import BENCH_CONFIG

#: Names timed by the view-vs-legacy comparison.
SAMPLE = 300

#: Acceptance floor on the per-name availability analysis speedup.
MIN_SPEEDUP = 3.0


def _warm_builder(internet, names):
    builder = DelegationGraphBuilder(internet.make_resolver())
    for name in names:
        builder.tcb_view(name)
    return builder


def _analyze_legacy(builder, names):
    """Graph copy + fresh-analyzer availability + exhaustive SPOF scan."""
    analyzer = AvailabilityAnalyzer(0.95)
    out = []
    for name in names:
        graph = builder.build(name)
        out.append((analyzer.resolution_probability(graph),
                    len(analyzer.single_points_of_failure_exhaustive(graph))))
    return out


def _analyze_view(builder, names):
    """Zero-copy view + shared availability/kill-set memos (the pass path)."""
    analyzer = AvailabilityAnalyzer(0.95, shared_memo={},
                                    shared_spof_memo={})
    out = []
    for name in names:
        view = builder.tcb_view(name)
        out.append((analyzer.resolution_probability(view),
                    len(analyzer.single_points_of_failure(view))))
    return out


def test_bench_availability_legacy_path(benchmark, bench_internet,
                                        paper_survey):
    names = [record.name for record in
             paper_survey.resolved_records()[:SAMPLE]]
    builder = _warm_builder(bench_internet, names)
    values = benchmark.pedantic(lambda: _analyze_legacy(builder, names),
                                iterations=1, rounds=1)
    assert all(0.0 <= probability <= 1.0 for probability, _spof in values)


def test_bench_availability_view_path(benchmark, bench_internet,
                                      paper_survey):
    names = [record.name for record in
             paper_survey.resolved_records()[:SAMPLE]]
    builder = _warm_builder(bench_internet, names)
    values = benchmark.pedantic(lambda: _analyze_view(builder, names),
                                iterations=1, rounds=3)
    assert all(0.0 <= probability <= 1.0 for probability, _spof in values)


def test_bench_availability_view_speedup(bench_internet, paper_survey,
                                         figure_writer):
    """The TCBView pass path must beat the graph-copy path >= 3x."""
    names = [record.name for record in
             paper_survey.resolved_records()[:SAMPLE]]
    builder = _warm_builder(bench_internet, names)

    start = time.perf_counter()
    legacy_values = _analyze_legacy(builder, names)
    legacy_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    view_values = _analyze_view(builder, names)
    view_elapsed = time.perf_counter() - start

    assert view_values == legacy_values
    speedup = legacy_elapsed / view_elapsed
    figure_writer.write(
        "passes_scaling",
        "Availability pass: TCBView + shared memos vs. graph copies",
        [f"names analysed              {len(names)}",
         f"legacy (copy + exhaustive)  {legacy_elapsed:.3f}s "
         f"({len(names) / legacy_elapsed:.0f} names/s)",
         f"view (zero-copy + memos)    {view_elapsed:.3f}s "
         f"({len(names) / view_elapsed:.0f} names/s)",
         f"speedup                     {speedup:.1f}x"])
    assert speedup >= MIN_SPEEDUP, (
        f"view path only {speedup:.1f}x faster than legacy path")


def test_bench_engine_passes_survey(bench_internet, figure_writer,
                                    bench_metrics):
    """End-to-end survey throughput with both built-in passes enabled."""
    engine = SurveyEngine(
        bench_internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count,
                            passes=("availability", "dnssec")))
    start = time.perf_counter()
    results = engine.run()
    elapsed = time.perf_counter() - start
    throughput = len(results) / elapsed
    summary = results.extras_summary()
    figure_writer.write(
        "passes_survey_throughput",
        "Engine survey with availability + DNSSEC passes (serial backend)",
        [f"names surveyed              {len(results)}",
         f"elapsed                     {elapsed:.2f}s",
         f"throughput                  {throughput:.0f} names/s",
         f"mean availability           {summary['availability']:.6f}",
         f"fraction secure (DNSSEC)    "
         f"{summary.get('dnssec_status=secure', 0.0):.3f}"])
    bench_metrics.record("passes_survey_throughput", names=len(results),
                         elapsed_s=round(elapsed, 4),
                         names_per_s=round(throughput, 1))
    assert results.headline()["names_resolved"] > 0
    assert 0.0 <= summary["availability"] <= 1.0
    assert throughput > 25, \
        "passes should not drop the engine below 25 names/s at bench scale"
