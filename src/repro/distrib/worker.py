"""The survey worker: one warm serial engine behind a TCP socket.

``repro-dns worker --listen host:port`` runs a :class:`WorkerServer`.  A
coordinator connects and drives it with frames (:mod:`repro.distrib.wire`):

* **BUILD** — a JSON description of the world (the ``GeneratorConfig``)
  and the engine options (popular count, glue, pass spec strings).  The
  worker regenerates the synthetic Internet locally — world generation is
  seeded and deterministic, so shipping the config *is* shipping the
  world — and builds a serial :class:`~repro.core.engine.SurveyEngine`
  plus a :class:`~repro.topology.changes.ChangeJournal` it will replay
  mutation specs into.
* **SURVEY** — a ``KIND_ORDER`` work order: the shard's directory
  indices + names + popular flags, the full mutation-spec history, and
  the epoch's global dirty-name set.  The worker applies only the spec
  tail it has not seen (keeping its warm universe exactly as stale as a
  serial delta engine's), invalidates like
  :meth:`SurveyEngine._invalidate_for_changes`, surveys its names, and
  replies with a **RESULT** frame whose payload is a ``KIND_SHARD``
  column container (records by global index, fingerprints, verdict maps).
* **PING** — liveness heartbeat, acked with OK (no payload, no state).
* **HELLO** — shared-secret auth handshake.  A worker started with an
  auth token (``--auth-token`` / ``REPRO_AUTH_TOKEN``) rejects every
  frame until a HELLO carrying a valid HMAC arrives on the connection;
  a worker without a token rejects HELLO with a precise ERROR so a
  token mismatch is never silent in either direction.
* **SHUTDOWN** — ack and exit.

Handler failures are reported to the coordinator as **ERROR** frames
(exception text plus a ``retryable`` flag); wire-level failures and idle
timeouts drop the connection and the worker goes back to accepting, so a
crashed coordinator never strands a worker.  Errors are isolated per
request — one bad order never kills the process — with one deliberate
exception: a failure while *replaying mutation specs* leaves the warm
world half-mutated, so the worker discards its engine and reports a
retryable ERROR, forcing the coordinator down the rebuild path instead
of surveying a corrupt world.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional

from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapstore import pack_shard_result
from repro.dns.name import DomainName
from repro.distrib.wire import (FRAME_BUILD, FRAME_ERROR, FRAME_HELLO,
                                FRAME_NAMES, FRAME_OK, FRAME_PING,
                                FRAME_RESULT, FRAME_SHUTDOWN, FRAME_SURVEY,
                                DistribError, WireError, error_payload,
                                fault_injector, recv_frame, send_frame,
                                unpack_work_order, verify_hello)
from repro.topology.changes import ChangeJournal, apply_mutation_spec
from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.topology.webdirectory import DirectoryEntry


def _engine_from_build(payload: bytes) -> SurveyEngine:
    """Regenerate the world and engine a BUILD frame describes."""
    try:
        build = json.loads(payload.decode("utf-8"))
        generator = build["generator"]
        engine_options = build["engine"]
    except (ValueError, KeyError, UnicodeDecodeError) as error:
        raise DistribError(f"malformed BUILD payload: {error}") from error
    # JSON round-trips dataclass tuples as lists; the generator only
    # iterates them, but normalise so reconstructed configs compare equal.
    config = GeneratorConfig(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in generator.items()})
    internet = InternetGenerator(config).generate()
    return SurveyEngine(internet, config=EngineConfig(
        backend="serial",
        popular_count=int(engine_options["popular_count"]),
        include_bottleneck=bool(engine_options["include_bottleneck"]),
        use_glue=bool(engine_options["use_glue"]),
        passes=list(engine_options.get("passes", ()))))


class WorkerStateError(DistribError):
    """The worker's warm state is unusable; a re-BUILD will cure it."""


class WorkerServer:
    """Serve one coordinator at a time until a SHUTDOWN frame arrives."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 auth_token: Optional[str] = None,
                 idle_timeout: Optional[float] = None):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._auth_token = auth_token
        self._idle_timeout = idle_timeout
        self._engine: Optional[SurveyEngine] = None
        self._journal: Optional[ChangeJournal] = None
        self._applied_specs = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept coordinators until one sends SHUTDOWN."""
        try:
            while True:
                connection, _peer = self._listener.accept()
                injector = fault_injector()
                if injector is not None and injector.refuse_accept():
                    connection.close()
                    continue
                try:
                    if not self._serve_connection(connection):
                        return
                finally:
                    connection.close()
        finally:
            self._listener.close()

    def _reply_error(self, connection: socket.socket, message: str,
                     retryable: bool = False) -> bool:
        """Send an ERROR frame; False means the connection is gone."""
        try:
            send_frame(connection, FRAME_ERROR,
                       error_payload(message, retryable=retryable))
            return True
        except WireError:
            return False

    def _serve_connection(self, connection: socket.socket) -> bool:
        """Handle frames on one connection; False means shut down."""
        authenticated = self._auth_token is None
        while True:
            try:
                frame_type, payload = recv_frame(
                    connection, timeout=self._idle_timeout,
                    peer="coordinator")
            except WireError:
                # Coordinator gone, stream corrupt, or idle past the
                # timeout: drop the connection and await a fresh
                # coordinator (warm state is kept).
                return True
            if frame_type == FRAME_HELLO:
                if self._auth_token is None:
                    self._reply_error(
                        connection,
                        "worker has no auth token configured; restart it "
                        "with --auth-token (or REPRO_AUTH_TOKEN) matching "
                        "the coordinator's")
                    return True
                try:
                    verify_hello(payload, self._auth_token, "coordinator")
                except WireError as error:
                    self._reply_error(connection, str(error))
                    return True
                authenticated = True
                try:
                    send_frame(connection, FRAME_OK)
                except WireError:
                    return True
                continue
            if not authenticated:
                # Auth gates everything, SHUTDOWN included: an open port
                # must not let an unauthenticated peer stop the worker.
                self._reply_error(
                    connection,
                    f"authentication required: this worker was started "
                    f"with an auth token but received "
                    f"{FRAME_NAMES[frame_type]} before HELLO")
                return True
            if frame_type == FRAME_SHUTDOWN:
                try:
                    send_frame(connection, FRAME_OK)
                except WireError:
                    pass
                return False
            if frame_type == FRAME_PING:
                try:
                    send_frame(connection, FRAME_OK)
                except WireError:
                    return True
                continue
            try:
                if frame_type == FRAME_BUILD:
                    self._handle_build(payload)
                    reply_type, reply = FRAME_OK, b""
                elif frame_type == FRAME_SURVEY:
                    reply_type, reply = FRAME_RESULT, \
                        self._handle_survey(payload)
                else:
                    raise DistribError(
                        f"unexpected {FRAME_NAMES[frame_type]} frame "
                        f"(worker accepts HELLO/PING/BUILD/SURVEY/"
                        f"SHUTDOWN)")
            except Exception as error:  # surfaced to the coordinator
                # Per-request isolation: report and keep serving.  A
                # poisoned-state or I/O failure is marked retryable —
                # reconnect-and-rebuild cures it; a deterministic
                # failure (bad order, bad build) is not.
                retryable = isinstance(error, (WorkerStateError, OSError,
                                               MemoryError))
                if not self._reply_error(
                        connection, f"{type(error).__name__}: {error}",
                        retryable=retryable):
                    return True
                continue
            try:
                send_frame(connection, reply_type, reply)
            except WireError:
                return True

    def _handle_build(self, payload: bytes) -> None:
        self._engine = _engine_from_build(payload)
        self._journal = ChangeJournal(self._engine.internet)
        self._applied_specs = 0

    def _handle_survey(self, payload: bytes) -> bytes:
        engine, journal = self._engine, self._journal
        if engine is None or journal is None:
            raise DistribError("SURVEY before BUILD: worker has no engine")
        indices, names, popular_flags, specs, dirty_names = \
            unpack_work_order(payload, label="work order")

        if len(specs) < self._applied_specs:
            raise DistribError(
                f"work order carries {len(specs)} mutation specs but "
                f"{self._applied_specs} were already applied "
                f"(coordinator restarted without a new BUILD?)")
        tail = specs[self._applied_specs:]
        if tail:
            try:
                events_before = len(journal)
                for spec in tail:
                    apply_mutation_spec(journal, spec)
                self._applied_specs = len(specs)
                changes = journal.changes(since=events_before)
                # Mirror run_delta: deployment-tracking passes adopt the
                # journalled DNSSEC extension before any invalidation.
                for deployment in changes.dnssec_deployments:
                    for pass_ in engine.passes:
                        adopt = getattr(pass_, "adopt_deployment", None)
                        if adopt is not None:
                            adopt(deployment)
                engine._invalidate_for_changes(
                    changes, {DomainName(name) for name in dirty_names})
            except Exception as error:
                # A failure mid-replay leaves the warm world half-mutated.
                # Surveying it would produce silently wrong records, so
                # discard the engine and force the rebuild path.
                self._engine = None
                self._journal = None
                self._applied_specs = 0
                raise WorkerStateError(
                    f"mutation replay failed ({type(error).__name__}: "
                    f"{error}); worker state discarded, re-BUILD "
                    f"required") from error

        directory = engine.internet.directory
        context = engine._root
        records = []
        for name, is_popular in zip(names, popular_flags):
            entry = directory.entry(name)
            if entry is None:
                entry = DirectoryEntry(name=DomainName(name),
                                       tld=DomainName(name).tld or "",
                                       category="adhoc", popularity=1.0)
            records.append(engine._survey_entry(context, entry, is_popular))
        return pack_shard_result(
            indices, records, context.fingerprinter.results(),
            dict(context.vulnerability_map),
            dict(context.compromisable_map),
            meta={"worker": self.address, "names": len(indices),
                  "specs_applied": self._applied_specs})
