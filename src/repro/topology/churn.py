"""A seeded churn model: the world mutations that make trust change hands.

The paper's central claim is longitudinal: a name's trusted computing base
is not a fact about the name but about *this month's* Internet — zones get
re-delegated when their owners switch registrars or hosting providers,
servers die and are replaced, operators upgrade (or downgrade) BIND, boxes
move between data centres, and DNSSEC deployment creeps monotonically
forward.  :class:`ChurnModel` turns that story into a reproducible workload:
each epoch it draws a configurable number of events from each class and
applies them through a :class:`~repro.topology.changes.ChangeJournal`, so
the survey engine's delta path (:meth:`SurveyEngine.run_delta`) can re-survey
exactly what each epoch invalidated.

Determinism is a hard contract: the same ``seed`` and :class:`ChurnRates`
over the same synthetic Internet produce the *identical* sequence of journal
events, epoch after epoch — candidate pools are iterated in sorted order and
every random draw comes from one private :class:`random.Random`.  That is
what makes a churn timeline a reproducible experiment rather than a demo.

Event classes (all rates are *expected events per epoch*; fractional rates
are realised by stochastic rounding, so e.g. ``death=0.25`` kills a server
roughly every fourth epoch):

``transfer``
    Registrar / provider transfer: a second-level-or-deeper zone's NS set is
    re-pointed wholesale at another operator's nameservers (hosting
    providers and ISPs take transfers, mirroring the paper's "most valuable
    nameservers" concentration).
``death``
    Server death and replacement: a box is decommissioned; its operator
    brings up a replacement (same software, fresh hostname and address) and
    every zone the dead server carried is re-delegated to include the
    replacement first.
``upgrade`` / ``downgrade``
    Software churn: a server's ``version.bind`` banner moves to a modern,
    patched BIND or regresses to a vulnerable one (an admin restoring an
    old image — the mechanism behind the paper's 17 % vulnerable servers).
``region``
    Region migration: a server moves to another geographic region (the
    availability model's correlated-failure domain).
``dnssec``
    Monotone DNSSEC adoption: the target signed fraction grows by the rate
    each epoch (capped at 1.0) and the extension is deployed through the
    journal — signing is additive, so the fraction never shrinks.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.name import DomainName
from repro.topology.changes import (
    ChangeEvent,
    ChangeJournal,
    zone_nameserver_union,
)
from repro.topology.operators import OperatorKind, Organization

#: Hostname / zone suffixes the churn model never touches: mutating the
#: root or gTLD registry infrastructure would dirty the whole directory
#: every epoch and drown the longitudinal signal in re-survey noise.
INFRASTRUCTURE_SUFFIXES: Tuple[str, ...] = ("root-servers.net",
                                            "gtld-servers.net")

#: Banners an ``upgrade`` event can install (patched, non-compromisable).
UPGRADE_BANNERS: Tuple[str, ...] = ("BIND 9.2.3", "BIND 9.3.0", "BIND 8.4.5")

#: Banners a ``downgrade`` event can regress to (well-documented holes).
DOWNGRADE_BANNERS: Tuple[str, ...] = ("BIND 8.2.2-P5", "BIND 8.3.1",
                                      "BIND 4.9.6")

#: Regions a ``region`` event can move a server between.
MIGRATION_REGIONS: Tuple[str, ...] = ("us", "eu", "asia", "oceania", "latam")

#: Operator kinds that accept registrar / provider transfers.
TRANSFER_TARGET_KINDS: Tuple[OperatorKind, ...] = (
    OperatorKind.HOSTING_PROVIDER, OperatorKind.ISP)

#: Operator kinds whose *home* zones never transfer: re-delegating a
#: hosting provider's (or registry's, or exchange-web university's) own
#: domain re-points the infrastructure every customer chain runs through —
#: a quasi-global event, not the long-tail registrar churn this models.
#: Enterprises, small businesses, and the like do transfer.
PINNED_HOME_ZONE_KINDS: Tuple[OperatorKind, ...] = (
    OperatorKind.ROOT, OperatorKind.GTLD_REGISTRY,
    OperatorKind.CCTLD_REGISTRY, OperatorKind.HOSTING_PROVIDER,
    OperatorKind.ISP, OperatorKind.UNIVERSITY)

#: A server serving more than this many zones is "too big to die": its
#: death would re-delegate every customer zone it carries in one epoch.
#: Long-tail boxes (self-hosted sites, university departments) stay mortal.
DEFAULT_DEATH_FANOUT_LIMIT = 6


@dataclasses.dataclass(frozen=True)
class ChurnRates:
    """Expected events per epoch for each churn class.

    ``dnssec`` is the odd one out: it is not an event count but the
    per-epoch *increment* of the target signed-zone fraction (0.05 means
    deployment grows five percentage points per epoch until saturated).
    """

    transfer: float = 1.0
    death: float = 0.5
    upgrade: float = 2.0
    downgrade: float = 0.5
    region: float = 1.0
    dnssec: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` on negative or nonsensical rates."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"churn rate {field.name} must be >= 0, "
                                 f"got {value}")
        if self.dnssec > 1.0:
            raise ValueError("dnssec rate is a per-epoch fraction increment "
                             f"and must be <= 1.0, got {self.dnssec}")

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form for timeline metadata."""
        return {field.name: float(getattr(self, field.name))
                for field in dataclasses.fields(self)}

    @classmethod
    def parse(cls, text: Optional[str]) -> "ChurnRates":
        """Parse the CLI form ``transfer=2,death=0.5,dnssec=0.05``.

        Unmentioned classes keep their defaults; an empty / ``None`` spec
        yields the default rates.
        """
        if not text or not text.strip():
            return cls()
        known = {field.name for field in dataclasses.fields(cls)}
        overrides: Dict[str, float] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, separator, value = item.partition("=")
            key = key.strip()
            if not separator:
                raise ValueError(f"malformed churn rate {item!r} "
                                 f"(expected class=rate)")
            if key not in known:
                raise ValueError(f"unknown churn class {key!r} "
                                 f"(expected one of {sorted(known)})")
            try:
                overrides[key] = float(value)
            except ValueError:
                raise ValueError(f"churn rate for {key!r} must be a number, "
                                 f"got {value!r}") from None
        rates = cls(**overrides)
        rates.validate()
        return rates


class ChurnModel:
    """Draws one epoch's worth of world mutations at a time.

    The model owns the evolution state that must persist across epochs: the
    RNG stream, the replacement-server counter, and the current DNSSEC
    target fraction.  It never touches the world directly — every mutation
    goes through the :class:`~repro.topology.changes.ChangeJournal` handed
    to :meth:`advance`, which is what keeps each epoch's footprint
    consumable by the delta engine.

    ``initial_dnssec`` must match the fraction the survey engine's ``dnssec``
    pass (if any) was configured with, so the first adoption step extends
    the deployment instead of replaying it; ``dnssec_seed`` and
    ``dnssec_sign_tlds`` likewise (see
    :func:`repro.core.timeline.dnssec_spec_options`, which extracts all
    three from a pass configuration).
    """

    def __init__(self, internet, rates: Optional[ChurnRates] = None,
                 seed: int = 0, initial_dnssec: float = 0.0,
                 dnssec_seed: str = "repro-dnssec",
                 dnssec_sign_tlds: bool = True,
                 death_fanout_limit: int = DEFAULT_DEATH_FANOUT_LIMIT):
        self.internet = internet
        self.rates = rates or ChurnRates()
        self.rates.validate()
        self.death_fanout_limit = death_fanout_limit
        # A string seed: random.Random hashes non-str/int seeds with the
        # interpreter's (PYTHONHASHSEED-salted) hash, which would break
        # cross-run determinism; str seeding is version-2 stable.
        self.rng = random.Random(f"churn-{seed}")
        self.seed = seed
        self.epoch_index = 0
        self.dnssec_fraction = initial_dnssec
        self.dnssec_seed = dnssec_seed
        self.dnssec_sign_tlds = dnssec_sign_tlds
        self._replacement_counter = 0
        self._infrastructure = tuple(DomainName(s)
                                     for s in INFRASTRUCTURE_SUFFIXES)

    # -- epoch driver ------------------------------------------------------------------

    def advance(self, journal: ChangeJournal) -> List[ChangeEvent]:
        """Apply one epoch of churn through ``journal``; returns its events.

        Event classes run in a fixed order (transfers, deaths, upgrades,
        downgrades, region moves, DNSSEC) and candidate pools are sorted,
        so the event sequence is a pure function of the model's seed,
        rates, and the world state evolved so far.
        """
        self.epoch_index += 1
        before = len(journal.events)
        # NS unions, served-zones index, and candidate pools are computed
        # once per epoch: events applied later in the same epoch can go
        # slightly stale against them, which only shifts *selection*
        # (deterministically); mutation correctness always checks the
        # live world (see _kill_and_replace_server).
        unions = {apex: zone_nameserver_union(self.internet, apex)
                  for apex in self.internet.zones}
        served = self._served_index(unions)
        transferable = self._transferable_zones(served, unions)
        operators = self._transfer_operators()
        mortal = self._mortal_servers(served)
        mutable = self._mutable_servers(served)
        for _ in range(self._draw_count(self.rates.transfer)):
            self._transfer_zone(journal, transferable, operators)
        for _ in range(self._draw_count(self.rates.death)):
            self._kill_and_replace_server(journal, mortal)
        for _ in range(self._draw_count(self.rates.upgrade)):
            self._change_software(journal, UPGRADE_BANNERS, mutable)
        for _ in range(self._draw_count(self.rates.downgrade)):
            self._change_software(journal, DOWNGRADE_BANNERS, mutable)
        for _ in range(self._draw_count(self.rates.region)):
            self._migrate_region(journal, mutable)
        self._advance_dnssec(journal)
        return list(journal.events[before:])

    def _draw_count(self, rate: float) -> int:
        """Stochastic rounding: E[count] == rate, deterministic per stream."""
        base = int(rate)
        remainder = rate - base
        if remainder > 0 and self.rng.random() < remainder:
            base += 1
        return base

    # -- candidate pools ---------------------------------------------------------------

    def _is_infrastructure(self, name: DomainName) -> bool:
        return any(name.is_subdomain_of(suffix)
                   for suffix in self._infrastructure)

    def _is_backbone(self, hostname: DomainName,
                     served: Dict[DomainName, List[DomainName]]) -> bool:
        """True when ``hostname`` carries root/TLD/registry infrastructure.

        Catches boxes the suffix list alone cannot: e.g. the nstld.com
        servers backing the gtld-servers.net zone sit under an innocuous
        apex but every com/net chain runs through them.
        """
        return any(apex.depth <= 1 or self._is_infrastructure(apex)
                   for apex in served.get(hostname, ()))

    def _transferable_zones(self, served: Dict[DomainName, List[DomainName]],
                            unions: Dict[DomainName, List[DomainName]]
                            ) -> List[DomainName]:
        """Second-level-or-deeper zones eligible for a registrar transfer.

        Infrastructure zones, zones on backbone servers (their NS union
        touches root/TLD/registry serving), and the home zones of
        :data:`PINNED_HOME_ZONE_KINDS` operators are pinned; everything
        else — hosted customer sites, enterprises, government and
        non-profit zones, delegated departments — is in play.
        """
        organizations = getattr(self.internet, "organizations", None)
        eligible: List[DomainName] = []
        for apex in self.internet.zones:
            if apex.depth < 2 or self._is_infrastructure(apex):
                continue
            if any(self._is_backbone(hostname, served)
                   for hostname in unions.get(apex, ())):
                continue
            if organizations is not None:
                owner = organizations.by_domain(apex)
                if owner is not None and owner.nameservers and \
                        owner.kind in PINNED_HOME_ZONE_KINDS:
                    continue
            eligible.append(apex)
        return sorted(eligible)

    def _served_index(self, unions: Dict[DomainName, List[DomainName]]
                      ) -> Dict[DomainName, List[DomainName]]:
        """host -> zones whose effective NS union (parent + apex) lists it.

        Inverted from the per-epoch union map — the same union the
        journal's ``remove_server`` validates, so eligibility reasoning
        and journal validation can never disagree about who serves what.
        """
        index: Dict[DomainName, List[DomainName]] = {}
        for apex, hostnames in unions.items():
            for hostname in hostnames:
                index.setdefault(hostname, []).append(apex)
        return index

    def _mortal_servers(self, served: Dict[DomainName, List[DomainName]]
                        ) -> List[DomainName]:
        """Servers that can die: long-tail boxes serving a few deep zones.

        Killing a TLD / root server would re-delegate a registry zone and
        dirty every name beneath it, and killing a hosting provider's
        workhorse would re-delegate every customer zone it carries; the
        churn story is about the long tail of operator boxes, so both are
        immortal here (``death_fanout_limit`` bounds the latter).
        """
        mortal: List[DomainName] = []
        for hostname in self.internet.servers:
            if self._is_infrastructure(hostname) or \
                    self._is_backbone(hostname, served):
                continue
            zones = served.get(hostname, ())
            if zones and len(zones) <= self.death_fanout_limit:
                mortal.append(hostname)
        return sorted(mortal)

    def _mutable_servers(self, served: Dict[DomainName, List[DomainName]]
                         ) -> List[DomainName]:
        """Servers whose software / region may churn.

        Registry-grade infrastructure — root / gTLD boxes and any server
        carrying a TLD zone — is pinned: one banner flip there re-verdicts
        an entire TLD cohort, which is registry policy, not the long-tail
        operator churn this models.  (Drive such events explicitly through
        a :class:`~repro.topology.changes.ChangeJournal` if you want them.)
        Boxes serving nothing — decommissioned by an earlier death event
        (``remove_server`` keeps them registered), or added but never
        delegated to — absorb no event slots: nothing depends on them.
        """
        mutable: List[DomainName] = []
        for hostname in self.internet.servers:
            if not served.get(hostname):
                continue
            if self._is_infrastructure(hostname) or \
                    self._is_backbone(hostname, served):
                continue
            mutable.append(hostname)
        return sorted(mutable)

    def _zones_served_by(self, hostname: DomainName) -> List[DomainName]:
        """Live served-zones of one host (never stale, used by mutations)."""
        return [apex for apex in self.internet.zones
                if hostname in zone_nameserver_union(self.internet, apex)]

    def _transfer_operators(self) -> List[Organization]:
        """Operators that take transfers, stable order."""
        organizations = getattr(self.internet, "organizations", None)
        if organizations is None:
            return []
        pool: List[Organization] = []
        for kind in TRANSFER_TARGET_KINDS:
            pool.extend(org for org in organizations.of_kind(kind)
                        if org.nameservers)
        return sorted(pool, key=lambda org: org.name)

    # -- event classes -----------------------------------------------------------------

    def _transfer_zone(self, journal: ChangeJournal,
                       zones: Sequence[DomainName],
                       operators: Sequence[Organization]
                       ) -> Optional[ChangeEvent]:
        """Re-point one zone's NS set at another operator (or skip)."""
        if not zones or not operators:
            return None
        apex = self.rng.choice(zones)
        target = self.rng.choice(operators)
        organizations = self.internet.organizations
        ns_union = zone_nameserver_union(self.internet, apex)
        current = organizations.operator_of(ns_union[0]) if ns_union else None
        if current is not None and current.name == target.name:
            # Transferring to the incumbent is a no-op story; skip the
            # epoch's slot rather than rerolling (rerolls would make the
            # draw count depend on pool composition).
            return None
        new_set = [DomainName(host) for host in target.nameservers[:2]]
        if not new_set:
            return None
        return journal.set_zone_nameservers(apex, new_set)

    def _kill_and_replace_server(self, journal: ChangeJournal,
                                 mortal: Sequence[DomainName]
                                 ) -> Optional[ChangeEvent]:
        """Decommission one server after bringing up its replacement."""
        if not mortal:
            return None
        victim = self.rng.choice(mortal)
        # Live scan, not the per-epoch served index: an earlier event this
        # epoch may have re-pointed a zone at the victim (a zone the index
        # missed whose only nameserver is the victim would make
        # remove_server rightly refuse to orphan it), or already killed
        # the victim (skip the slot instead of minting a pointless
        # replacement).
        serving = self._zones_served_by(victim)
        if not serving:
            return None
        server = self.internet.servers[victim]
        organizations = getattr(self.internet, "organizations", None)
        operator = organizations.operator_of(victim) \
            if organizations is not None else None
        self._replacement_counter += 1
        replacement = victim.parent().child(
            f"ns-r{self._replacement_counter}")
        if self.internet.servers.get(replacement) is not None:
            return None  # pathological namespace collision; skip the slot
        journal.add_server(replacement, software=server.software,
                           region=server.region,
                           organization=operator.name
                           if operator is not None else None)
        for apex in sorted(serving):
            journal.add_zone_nameserver(apex, replacement)
        return journal.remove_server(victim)

    def _change_software(self, journal: ChangeJournal,
                         banners: Sequence[str],
                         pool: Sequence[DomainName]) -> Optional[ChangeEvent]:
        """Move one server's banner to a draw from ``banners``."""
        if not pool:
            return None
        hostname = self.rng.choice(pool)
        banner = self.rng.choice(list(banners))
        if self.internet.servers[hostname].software == banner:
            return None  # already running it; a journalled no-op would
            # still dirty every dependant for nothing
        return journal.set_server_software(hostname, banner)

    def _migrate_region(self, journal: ChangeJournal,
                        pool: Sequence[DomainName]) -> Optional[ChangeEvent]:
        """Move one server to a different region."""
        if not pool:
            return None
        hostname = self.rng.choice(pool)
        current = self.internet.servers[hostname].region
        destinations = [region for region in MIGRATION_REGIONS
                        if region != current]
        return journal.move_server_region(hostname,
                                          self.rng.choice(destinations))

    def _advance_dnssec(self, journal: ChangeJournal) -> Optional[ChangeEvent]:
        """Grow the signed fraction by the per-epoch rate (monotone)."""
        if self.rates.dnssec <= 0 or self.dnssec_fraction >= 1.0:
            return None
        self.dnssec_fraction = min(1.0,
                                   self.dnssec_fraction + self.rates.dnssec)
        return journal.deploy_dnssec(fraction=self.dnssec_fraction,
                                     always_sign_tlds=self.dnssec_sign_tlds,
                                     seed=self.dnssec_seed)
