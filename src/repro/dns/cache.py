"""TTL-driven resolver cache.

The cache is a positive/negative cache keyed by (name, type, class).  It is
used by :class:`~repro.dns.resolver.IterativeResolver` to avoid re-walking
delegation chains, mirroring the behaviour studied by Jung et al. that the
paper cites.  Time does not advance by itself: the cache is driven by an
explicit clock value supplied by the caller (the simulated network's clock),
which keeps experiments deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import RCode, RRClass, RRType
from repro.dns.records import ResourceRecord


@dataclasses.dataclass
class CacheEntry:
    """A cached answer (possibly negative) with its expiry time."""

    records: List[ResourceRecord]
    rcode: RCode
    inserted_at: float
    expires_at: float

    @property
    def is_negative(self) -> bool:
        """True for cached NXDOMAIN / NODATA results."""
        return self.rcode is not RCode.NOERROR or not self.records

    def is_expired(self, now: float) -> bool:
        """True if the entry should no longer be used at time ``now``."""
        return now >= self.expires_at


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for the cache."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    insertions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResolverCache:
    """A (name, type, class) keyed cache with TTL expiry.

    Parameters
    ----------
    max_entries:
        Soft bound on cache size.  When exceeded, expired entries are purged;
        if still over the bound, the oldest entries are evicted.
    negative_ttl:
        TTL applied to cached negative answers (RFC 2308 style).
    """

    def __init__(self, max_entries: int = 100000, negative_ttl: int = 3600):
        self.max_entries = max_entries
        self.negative_ttl = negative_ttl
        self.stats = CacheStats()
        self._entries: Dict[Tuple[DomainName, RRType, RRClass], CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, name: NameLike, rtype: RRType,
             rclass: RRClass) -> Tuple[DomainName, RRType, RRClass]:
        return (DomainName(name), rtype, rclass)

    def get(self, name: NameLike, rtype: RRType = RRType.A,
            rclass: RRClass = RRClass.IN,
            now: float = 0.0) -> Optional[CacheEntry]:
        """Return a live cache entry, or ``None`` on a miss."""
        key = self._key(name, rtype, rclass)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.is_expired(now):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(self, name: NameLike, rtype: RRType, records: List[ResourceRecord],
            rcode: RCode = RCode.NOERROR, rclass: RRClass = RRClass.IN,
            now: float = 0.0) -> CacheEntry:
        """Insert an answer into the cache and return the new entry."""
        if records:
            ttl = min(record.ttl for record in records)
        else:
            ttl = self.negative_ttl
        entry = CacheEntry(records=list(records), rcode=rcode,
                           inserted_at=now, expires_at=now + ttl)
        self._entries[self._key(name, rtype, rclass)] = entry
        self.stats.insertions += 1
        if len(self._entries) > self.max_entries:
            self._evict(now)
        return entry

    def _evict(self, now: float) -> None:
        """Purge expired entries; if still over budget, drop the oldest."""
        expired = [key for key, entry in self._entries.items()
                   if entry.is_expired(now)]
        for key in expired:
            del self._entries[key]
            self.stats.expirations += 1
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries, key=lambda k: self._entries[k].inserted_at)
            del self._entries[oldest]

    def clone(self) -> "ResolverCache":
        """An independent snapshot of this cache.

        Entries are copied (records lists included) so the clone can be
        handed to another survey shard without sharing mutable state; the
        clone starts with fresh statistics.
        """
        twin = ResolverCache(max_entries=self.max_entries,
                             negative_ttl=self.negative_ttl)
        twin._entries = {
            key: CacheEntry(records=list(entry.records), rcode=entry.rcode,
                            inserted_at=entry.inserted_at,
                            expires_at=entry.expires_at)
            for key, entry in self._entries.items()}
        return twin

    def flush(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()

    def purge(self, names: Iterable[NameLike] = (),
              subtrees: Iterable[NameLike] = ()) -> int:
        """Remove entries for the given names / namespace subtrees.

        ``names`` drops exact owner names; ``subtrees`` drops every entry
        whose owner lies at or below one of the given apexes (the shape a
        zone mutation or a newly cut delegation can stale — including
        negative answers for names that now exist).  Returns the number of
        entries removed.
        """
        exact = {DomainName(name) for name in names}
        apexes = [DomainName(apex) for apex in subtrees]
        if not exact and not apexes:
            return 0
        stale = [key for key in self._entries
                 if key[0] in exact or
                 any(key[0].is_subdomain_of(apex) for apex in apexes)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def purge_expired(self, now: float) -> int:
        """Remove expired entries; return how many were removed."""
        expired = [key for key, entry in self._entries.items()
                   if entry.is_expired(now)]
        for key in expired:
            del self._entries[key]
        self.stats.expirations += len(expired)
        return len(expired)
