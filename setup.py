"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e .`` keeps working on minimal environments
that lack the ``wheel`` package required for PEP 660 editable installs
(``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
