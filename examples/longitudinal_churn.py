#!/usr/bin/env python
"""Longitudinal churn: watch a name's trust drift as zones change hands.

The paper's survey is a single frozen snapshot of July 2004, but its core
observation is dynamic: the trusted computing base of a name is a moving
target.  Registrars transfer zones between operators, providers replace
dead boxes, admins upgrade (and sometimes downgrade) BIND, and DNSSEC
deployment creeps monotonically forward — and every one of those events
silently rewrites who can hijack which names.

This example runs that movie end to end:

1. build a synthetic Internet and survey it cold (epoch 0);
2. run a seeded churn model for ``--epochs`` epochs, re-surveying only the
   names each epoch's mutations invalidated (the delta engine);
3. print the drift series — hijackable fraction, TCB size, DNSSEC progress,
   per-epoch churned names — and the biggest movers of the final epoch;
4. optionally save the machine-readable timeline for ``repro-dns timeline``.

Run it with::

    python examples/longitudinal_churn.py              # ~1 minute
    python examples/longitudinal_churn.py --small      # ~10 seconds
    python examples/longitudinal_churn.py --epochs 24 --output timeline.json
"""

from __future__ import annotations

import argparse
import sys

from repro import GeneratorConfig, InternetGenerator
from repro.cli import print_timeline
from repro.core.timeline import (
    dnssec_spec_options,
    run_churn_timeline,
    save_timeline,
)
from repro.topology.churn import ChurnModel, ChurnRates

#: The scenario: a steady trickle of registrar transfers and software
#: churn, an occasional server death, and DNSSEC adoption growing four
#: percentage points per epoch from a 20 % start.
RATES = ChurnRates(transfer=2.0, death=0.5, upgrade=2.0, downgrade=0.5,
                   region=1.0, dnssec=0.04)

PASSES = ("availability:samples=8", "dnssec:fraction=0.2")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="use a small topology for a fast demo run")
    parser.add_argument("--seed", type=int, default=20040722,
                        help="RNG seed for the synthetic Internet")
    parser.add_argument("--churn-seed", type=int, default=7,
                        help="RNG seed for the churn scenario")
    parser.add_argument("--epochs", type=int, default=12,
                        help="number of churn epochs to simulate")
    parser.add_argument("--output", type=str, default=None,
                        help="write the machine-readable timeline here")
    return parser.parse_args()


def make_config(args: argparse.Namespace) -> GeneratorConfig:
    if args.small:
        return GeneratorConfig(seed=args.seed, sld_count=200,
                               directory_name_count=320,
                               university_count=40,
                               hosting_provider_count=12, isp_count=8,
                               alexa_count=60)
    return GeneratorConfig(seed=args.seed, sld_count=800,
                           directory_name_count=1400, university_count=90,
                           alexa_count=300)


def main() -> None:
    args = parse_args()
    config = make_config(args)

    print("Generating the synthetic Internet ...")
    internet = InternetGenerator(config).generate()
    summary = internet.summary()
    print(f"  {summary['servers']} servers, {summary['zones']} zones, "
          f"{summary['directory_names']} directory names")

    initial_dnssec, dnssec_seed, sign_tlds = dnssec_spec_options(PASSES)
    model = ChurnModel(internet, RATES, seed=args.churn_seed,
                       initial_dnssec=initial_dnssec,
                       dnssec_seed=dnssec_seed,
                       dnssec_sign_tlds=sign_tlds)

    print(f"\nSimulating {args.epochs} epochs of churn "
          f"(rates: {RATES.to_dict()}) ...")

    def progress(epoch, snapshot):
        print(f"  epoch {epoch:2d}: {snapshot.events:2d} events -> "
              f"{snapshot.dirty_names}/{snapshot.total_names} names "
              f"re-surveyed in {snapshot.delta_elapsed_s:.2f}s",
              file=sys.stderr)

    timeline = run_churn_timeline(internet, model, epochs=args.epochs,
                                  passes=PASSES,
                                  popular_count=config.alexa_count,
                                  progress=progress)

    print()
    print_timeline(timeline)

    # The longitudinal punchline: how much of the namespace changed state
    # at least once, versus what any single frozen survey would report.
    drift = timeline.drift_series("changed_names")[1:]
    resurveyed = timeline.drift_series("dirty_names")[1:]
    print(f"\nAcross {timeline.epochs} epochs: "
          f"{sum(drift)} record changes observed, "
          f"{sum(resurveyed)} incremental re-surveys "
          f"(a cold rerun would have re-surveyed "
          f"{timeline.epochs * timeline.snapshots[0].total_names} names)")

    if args.output:
        path = save_timeline(timeline, args.output)
        print(f"timeline written to {path} "
              f"(render it with: repro-dns timeline {path})")


if __name__ == "__main__":
    main()
