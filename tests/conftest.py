"""Shared fixtures for the test suite.

Two substrates are provided:

* ``mini_internet`` -- a small, hand-built deployment (root, two TLDs, a
  provider, a university chain, and a deliberately vulnerable server) used by
  the resolver / delegation / hijack unit tests.  Building it by hand keeps
  those tests independent of the topology generator.
* ``small_internet`` / ``small_survey`` -- a session-scoped generated
  Internet and its survey results, shared by the integration-style tests so
  the (comparatively expensive) survey runs only once.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.dns.name import DomainName
from repro.dns.rdtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.netsim.network import SimulatedNetwork
from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.core.survey import Survey


@dataclasses.dataclass
class MiniInternet:
    """A hand-built miniature DNS deployment for unit tests."""

    network: SimulatedNetwork
    root_hints: dict
    servers: dict
    zones: dict

    def make_resolver(self, **kwargs):
        """Create a resolver over this deployment."""
        from repro.dns.resolver import IterativeResolver
        return IterativeResolver(self.network, self.root_hints, **kwargs)


def _server(network, servers, hostname, address, software="BIND 9.2.3",
            operator="test", region="us"):
    server = AuthoritativeServer(hostname, addresses=[address],
                                 software=software, operator=operator,
                                 region=region)
    network.register_server(server)
    servers[DomainName(hostname)] = server
    return server


def build_mini_internet() -> MiniInternet:
    """Construct the miniature deployment used across unit tests.

    Layout (arrows are delegations)::

        .  ->  com  ->  example.com      (hosted at ns[12].hostco.com)
           ->  com  ->  hostco.com       (self-hosted, glued)
           ->  edu  ->  uni.edu          (self-hosted + offsite secondary
                                          dns1.partner.edu)
           ->  edu  ->  partner.edu      (self-hosted; dns2.partner.edu runs
                                          a vulnerable BIND 8.2.4)
        www.example.com, www.uni.edu are the externally visible names.
    """
    network = SimulatedNetwork()
    servers: dict = {}
    zones: dict = {}

    # Root.
    root_zone = Zone(".")
    rs_zone = Zone("root-servers.net")
    root_hosts = []
    for letter in ("a", "b"):
        hostname = f"{letter}.root-servers.net"
        address = f"198.41.0.{4 if letter == 'a' else 5}"
        _server(network, servers, hostname, address, operator="root-ops")
        rs_zone.add(hostname, RRType.A, address)
        root_hosts.append(hostname)
    root_zone.set_apex_nameservers(root_hosts)
    rs_zone.set_apex_nameservers(root_hosts)

    # com TLD, served by two registry servers with glue in the root.
    com_zone = Zone("com")
    com_hosts = []
    for index in (1, 2):
        hostname = f"ns{index}.gtld.net"
        address = f"192.5.6.{index * 10}"
        _server(network, servers, hostname, address, operator="gtld-registry")
        com_hosts.append(hostname)
    com_zone.set_apex_nameservers(com_hosts)
    root_zone.delegate("com", com_hosts,
                       glue={host: [servers[DomainName(host)].addresses[0]]
                             for host in com_hosts})

    # net TLD served by the same registry servers (as in reality).
    net_zone = Zone("net")
    net_zone.set_apex_nameservers(com_hosts)
    root_zone.delegate("net", com_hosts,
                       glue={host: [servers[DomainName(host)].addresses[0]]
                             for host in com_hosts})
    gtld_net_zone = Zone("gtld.net")
    for index, host in enumerate((com_hosts), start=1):
        gtld_net_zone.add(host, RRType.A,
                          servers[DomainName(host)].addresses[0])
    gtld_net_zone.set_apex_nameservers(com_hosts)
    net_zone.delegate("gtld.net", com_hosts,
                      glue={host: [servers[DomainName(host)].addresses[0]]
                            for host in com_hosts})

    # edu TLD.
    edu_zone = Zone("edu")
    edu_host = "ns1.edunic.net"
    _server(network, servers, edu_host, "192.5.7.10",
            operator="edu-registry")
    gtld_net_zone_hosts = [edu_host]
    edunic_zone = Zone("edunic.net")
    edunic_zone.add(edu_host, RRType.A, "192.5.7.10")
    edunic_zone.set_apex_nameservers([edu_host])
    net_zone.delegate("edunic.net", [edu_host],
                      glue={edu_host: ["192.5.7.10"]})
    edu_zone.set_apex_nameservers([edu_host])
    root_zone.delegate("edu", [edu_host], glue={edu_host: ["192.5.7.10"]})

    # hostco.com: a hosting provider, self-hosted with glue.
    hostco_zone = Zone("hostco.com")
    hostco_hosts = []
    for index in (1, 2):
        hostname = f"ns{index}.hostco.com"
        address = f"10.1.0.{index}"
        _server(network, servers, hostname, address, operator="hostco",
                software="BIND 9.2.3" if index == 1 else "BIND 8.2.3")
        hostco_zone.add(hostname, RRType.A, address)
        hostco_hosts.append(hostname)
    hostco_zone.set_apex_nameservers(hostco_hosts)
    hostco_zone.add("www.hostco.com", RRType.A, "10.1.0.80")
    com_zone.delegate("hostco.com", hostco_hosts,
                      glue={host: [servers[DomainName(host)].addresses[0]]
                            for host in hostco_hosts})

    # example.com: hosted at hostco.
    example_zone = Zone("example.com")
    example_zone.set_apex_nameservers(hostco_hosts)
    example_zone.add("www.example.com", RRType.A, "10.2.0.80")
    example_zone.add("alias.example.com", RRType.CNAME, "www.example.com")
    com_zone.delegate("example.com", hostco_hosts)

    # partner.edu: self-hosted; dns2 runs a vulnerable BIND.
    partner_zone = Zone("partner.edu")
    partner_hosts = []
    for index in (1, 2):
        hostname = f"dns{index}.partner.edu"
        address = f"10.3.0.{index}"
        software = "BIND 9.2.3" if index == 1 else "BIND 8.2.4"
        _server(network, servers, hostname, address, operator="partner-univ",
                software=software)
        partner_zone.add(hostname, RRType.A, address)
        partner_hosts.append(hostname)
    partner_zone.set_apex_nameservers(partner_hosts)
    partner_zone.add("www.partner.edu", RRType.A, "10.3.0.80")
    edu_zone.delegate("partner.edu", partner_hosts,
                      glue={host: [servers[DomainName(host)].addresses[0]]
                            for host in partner_hosts})

    # uni.edu: self-hosted plus an off-site secondary at partner.edu.
    uni_zone = Zone("uni.edu")
    uni_hosts = []
    for index in (1, 2):
        hostname = f"dns{index}.uni.edu"
        address = f"10.4.0.{index}"
        _server(network, servers, hostname, address, operator="uni")
        uni_zone.add(hostname, RRType.A, address)
        uni_hosts.append(hostname)
    uni_ns = uni_hosts + ["dns1.partner.edu"]
    uni_zone.set_apex_nameservers(uni_ns)
    uni_zone.add("www.uni.edu", RRType.A, "10.4.0.80")
    edu_zone.delegate("uni.edu", uni_ns,
                      glue={host: [servers[DomainName(host)].addresses[0]]
                            for host in uni_hosts})

    # Attach zones to the servers that are authoritative for them.
    def attach(zone, hostnames):
        zones[zone.apex] = zone
        for hostname in hostnames:
            servers[DomainName(hostname)].add_zone(zone)

    attach(root_zone, root_hosts)
    attach(rs_zone, root_hosts)
    attach(com_zone, com_hosts)
    attach(net_zone, com_hosts)
    attach(gtld_net_zone, com_hosts)
    attach(edu_zone, [edu_host])
    attach(edunic_zone, [edu_host])
    attach(hostco_zone, hostco_hosts)
    attach(example_zone, hostco_hosts)
    attach(partner_zone, partner_hosts)
    attach(uni_zone, uni_hosts + ["dns1.partner.edu"])

    root_hints = {host: [servers[DomainName(host)].addresses[0]]
                  for host in root_hosts}
    return MiniInternet(network=network, root_hints=root_hints,
                        servers=servers, zones=zones)


@pytest.fixture
def mini_internet() -> MiniInternet:
    """A fresh hand-built miniature Internet for each test."""
    return build_mini_internet()


#: Generator configuration used by the shared generated fixtures: small
#: enough to build and survey in a few seconds, large enough to exercise
#: every topology feature (universities, ccTLDs, anecdotes, providers).
SMALL_CONFIG = GeneratorConfig(
    seed=20040722, sld_count=220, directory_name_count=380,
    hosting_provider_count=12, isp_count=10, university_count=45,
    alexa_count=60)


@pytest.fixture(scope="session")
def small_internet():
    """A session-scoped generated synthetic Internet."""
    return InternetGenerator(SMALL_CONFIG).generate()


@pytest.fixture(scope="session")
def small_survey(small_internet):
    """Survey results over the session-scoped synthetic Internet."""
    survey = Survey(small_internet, popular_count=60)
    return survey.run()
