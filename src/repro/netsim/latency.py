"""Latency model for the simulated network.

Queries in the survey traverse the real Internet; in the substrate we model
round-trip times with a simple region-to-region matrix plus per-query jitter.
Latency does not affect the paper's structural analyses, but it feeds the
simulated clock (which drives cache expiry) and makes the resolver traces
realistic enough to reason about query-count/latency trade-offs in the
examples.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

#: Baseline one-way latency (milliseconds) between coarse regions.  The
#: matrix is symmetric; missing pairs fall back to :data:`DEFAULT_RTT_MS`.
REGION_RTT_MS: Dict[Tuple[str, str], float] = {
    ("us", "us"): 30.0,
    ("us", "eu"): 90.0,
    ("us", "asia"): 150.0,
    ("us", "oceania"): 160.0,
    ("us", "latam"): 120.0,
    ("us", "africa"): 180.0,
    ("eu", "eu"): 25.0,
    ("eu", "asia"): 130.0,
    ("eu", "oceania"): 200.0,
    ("eu", "latam"): 150.0,
    ("eu", "africa"): 110.0,
    ("asia", "asia"): 50.0,
    ("asia", "oceania"): 110.0,
    ("asia", "latam"): 220.0,
    ("asia", "africa"): 190.0,
    ("oceania", "oceania"): 30.0,
    ("oceania", "latam"): 230.0,
    ("oceania", "africa"): 240.0,
    ("latam", "latam"): 45.0,
    ("latam", "africa"): 210.0,
    ("africa", "africa"): 60.0,
}

#: Fallback RTT when a region pair is unknown.
DEFAULT_RTT_MS = 120.0

#: Regions recognised by the model (used by the topology generator).
KNOWN_REGIONS = ("us", "eu", "asia", "oceania", "latam", "africa")


class LatencyModel:
    """Deterministic-with-jitter latency model.

    Parameters
    ----------
    jitter_fraction:
        Maximum relative jitter applied to each query (0.2 means +/-20 %).
    rng:
        Random generator used for jitter.  Passing a seeded generator makes
        traces reproducible.
    """

    def __init__(self, jitter_fraction: float = 0.2,
                 rng: Optional[random.Random] = None):
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.jitter_fraction = jitter_fraction
        self._rng = rng or random.Random(0)

    def base_rtt(self, region_a: str, region_b: str) -> float:
        """Round-trip time between two regions, without jitter."""
        key = (region_a, region_b)
        if key in REGION_RTT_MS:
            return REGION_RTT_MS[key]
        reverse = (region_b, region_a)
        if reverse in REGION_RTT_MS:
            return REGION_RTT_MS[reverse]
        return DEFAULT_RTT_MS

    def sample_rtt(self, region_a: str, region_b: str) -> float:
        """Round-trip time for one query, with jitter applied."""
        base = self.base_rtt(region_a, region_b)
        if not self.jitter_fraction:
            return base
        jitter = self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(1.0, base * (1.0 + jitter))
