#!/usr/bin/env python
"""Report the highest-value nameservers and how well they are defended.

Section 3.3 of the paper: the value of a nameserver is the number of names
that depend on it.  Attackers go after high-leverage servers; the paper
finds ~125 servers that each control more than 10 % of the namespace, a
dozen of them vulnerable, and a surprising number operated by universities
and non-profits with no fiduciary relationship to the names they serve.

This example prints that report for the synthetic Internet:

* the overall rank/value table (Figure 8);
* the .edu / .org breakdown (Figure 9);
* for every high-leverage *vulnerable* server, the exploits that apply and
  how many names an attacker would gain.

Run with::

    python examples/nameserver_value_report.py
"""

from __future__ import annotations

from repro import GeneratorConfig, InternetGenerator, Survey
from repro.core.report import format_table


def main() -> None:
    print("Surveying the synthetic Internet ...")
    config = GeneratorConfig(seed=20040722, sld_count=600,
                             directory_name_count=950, university_count=90,
                             hosting_provider_count=20, isp_count=16,
                             alexa_count=150)
    internet = InternetGenerator(config).generate()
    results = Survey(internet, popular_count=150).run()
    analyzer = results.value_analyzer()
    total_names = len(results.resolved_records())

    print(f"\n[1] Value distribution over {analyzer.server_count} nameservers "
          f"and {total_names} names")
    print(format_table([
        ("mean names controlled", f"{analyzer.mean_names_controlled():.1f}"),
        ("median names controlled",
         f"{analyzer.median_names_controlled():.0f}"),
        ("servers controlling >10% of names",
         len(analyzer.high_leverage_servers(0.10))),
        ("  of which vulnerable",
         len(analyzer.high_leverage_servers(0.10, only_vulnerable=True))),
    ], headers=("metric", "value")))

    print("\n[2] Top 15 most valuable nameservers (Figure 8)")
    rows = []
    for value in analyzer.ranking()[:15]:
        org = internet.organizations.operator_of(value.hostname)
        rows.append((value.rank, str(value.hostname),
                     value.names_controlled,
                     f"{value.names_controlled / total_names:.0%}",
                     org.kind.value if org else "?",
                     "YES" if value.vulnerable else "no"))
    print(format_table(rows, headers=("rank", "nameserver", "names", "share",
                                      "operator", "vulnerable")))

    print("\n[3] Most valuable .edu and .org servers (Figure 9)")
    for tld in ("edu", "org"):
        ranking = analyzer.ranking(tld_filter=(tld,))[:5]
        if not ranking:
            continue
        print(f"  .{tld}:")
        for value in ranking:
            print(f"    {value.hostname}  controls {value.names_controlled} "
                  f"names ({value.names_controlled / total_names:.0%})")

    print("\n[4] High-leverage servers an attacker can take today")
    vulnerable_high = analyzer.high_leverage_servers(0.05,
                                                     only_vulnerable=True)
    if not vulnerable_high:
        print("  none above the 5% threshold in this run")
    rows = []
    for value in vulnerable_high[:10]:
        fingerprint = results.fingerprints.get(value.hostname)
        exploits = ", ".join(fingerprint.vulnerabilities) if fingerprint else ""
        rows.append((str(value.hostname), value.names_controlled,
                     fingerprint.banner if fingerprint else "?", exploits))
    if rows:
        print(format_table(rows, headers=("nameserver", "names", "version",
                                          "known exploits")))
    print("\nBreaking into one well-chosen nameserver beats breaking into "
          "thousands of webservers.")


if __name__ == "__main__":
    main()
