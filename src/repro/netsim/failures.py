"""Failure injection for what-if experiments.

The paper argues that administrators trade failure resilience for security.
To explore that trade-off (and to model the "DoS the one safe bottleneck
server" attack in Section 3.2), the substrate can fail servers individually,
partition whole regions, or saturate a server with a simulated denial of
service.  :class:`FailureInjector` records what it changed so that scenarios
can be reverted cleanly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set

from repro.dns.name import DomainName, NameLike
from repro.dns.server import AuthoritativeServer, ServerStatus


@dataclasses.dataclass
class FailureScenario:
    """A named, reversible set of injected failures."""

    name: str
    failed_servers: Set[DomainName] = dataclasses.field(default_factory=set)
    partitioned_regions: Set[str] = dataclasses.field(default_factory=set)
    description: str = ""

    def is_empty(self) -> bool:
        """True if the scenario injects nothing."""
        return not self.failed_servers and not self.partitioned_regions


class FailureInjector:
    """Applies and reverts failure scenarios against a network.

    The injector operates on the server objects held by a
    :class:`~repro.netsim.network.SimulatedNetwork`; it never removes hosts,
    it only toggles their status, so reverting a scenario restores the exact
    pre-scenario state.
    """

    def __init__(self, network) -> None:
        self._network = network
        self._saved_status: Dict[DomainName, ServerStatus] = {}
        self._active: Optional[FailureScenario] = None

    @property
    def active_scenario(self) -> Optional[FailureScenario]:
        """The currently-applied scenario, if any."""
        return self._active

    def apply(self, scenario: FailureScenario) -> int:
        """Apply ``scenario``; return the number of servers failed.

        Applying a scenario while another is active reverts the previous one
        first, so at most one scenario is in effect at a time.
        """
        if self._active is not None:
            self.revert()
        failed = 0
        for hostname in scenario.failed_servers:
            server = self._network.find_server(hostname)
            if server is None:
                continue
            self._saved_status[server.hostname] = server.status
            server.fail()
            failed += 1
        for region in scenario.partitioned_regions:
            for server in self._network.servers_in_region(region):
                if server.hostname not in self._saved_status:
                    self._saved_status[server.hostname] = server.status
                    server.fail()
                    failed += 1
        self._active = scenario
        return failed

    def fail_servers(self, hostnames: Iterable[NameLike],
                     scenario_name: str = "adhoc") -> FailureScenario:
        """Convenience: build and apply a scenario failing ``hostnames``."""
        scenario = FailureScenario(
            name=scenario_name,
            failed_servers={DomainName(h) for h in hostnames})
        self.apply(scenario)
        return scenario

    def dos(self, hostname: NameLike) -> bool:
        """Saturate a single server (modelled as making it unresponsive).

        Returns False if the server is unknown.
        """
        server = self._network.find_server(hostname)
        if server is None:
            return False
        self._saved_status.setdefault(server.hostname, server.status)
        server.fail()
        if self._active is None:
            self._active = FailureScenario(name="dos")
        self._active.failed_servers.add(server.hostname)
        return True

    def revert(self) -> int:
        """Undo the active scenario; return the number of servers restored."""
        restored = 0
        for hostname, status in self._saved_status.items():
            server = self._network.find_server(hostname)
            if server is None:
                continue
            server.status = status
            restored += 1
        self._saved_status.clear()
        self._active = None
        return restored

    def surviving_servers(self) -> List[AuthoritativeServer]:
        """Servers that are still up under the active scenario."""
        return [server for server in self._network.iter_servers()
                if server.is_up]
