"""BIND version assignment policy.

The survey found roughly 17 % of nameservers (27,141 of 166,771) running a
BIND version with at least one well-documented hole, with the sloppiness
concentrated in particular operator populations (educational institutions,
small ccTLD communities such as ``.ws``).  The generator reproduces that
skew with a per-operator-kind *hygiene* prior modulated by the TLD profile's
hygiene score: a draw below the effective hygiene yields a modern, safe BIND
9 release; a draw above it yields one of the vulnerable BIND 4/8 releases the
catalogue in :mod:`repro.vulns.database` knows about.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.operators import OperatorKind

#: Banner pools.  "safe" versions have no entries in the default catalogue;
#: "vulnerable" versions are matched by one or more known exploits; "hidden"
#: entries model servers that refuse or obfuscate version.bind.
VERSION_POOLS: Dict[str, Tuple[str, ...]] = {
    "safe": (
        "BIND 9.2.3",
        "BIND 9.2.4rc2",
        "BIND 9.3.0",
        "BIND 8.4.4",
        "BIND 8.4.5",
        "BIND 9.2.3-P1",
    ),
    "vulnerable": (
        "BIND 8.2.2-P5",
        "BIND 8.2.3",
        "BIND 8.2.4",
        "BIND 8.2.6",
        "BIND 8.3.1",
        "BIND 8.3.3",
        "BIND 4.9.6",
        "BIND 9.2.0",
        "BIND 9.2.1",
        "BIND 9.2.2",
    ),
    "hidden": (
        "SECRET",
        "go away",
        "unknown",
    ),
}

#: Baseline hygiene (probability of running a safe version) per operator
#: kind, before TLD modulation.  Registries for the big gTLDs are near
#: perfect; universities and small operators lag.
KIND_HYGIENE: Dict[OperatorKind, float] = {
    OperatorKind.ROOT: 1.00,
    OperatorKind.GTLD_REGISTRY: 1.00,
    OperatorKind.CCTLD_REGISTRY: 0.99,
    OperatorKind.HOSTING_PROVIDER: 0.66,
    OperatorKind.ISP: 0.78,
    OperatorKind.UNIVERSITY: 0.985,
    OperatorKind.ENTERPRISE: 0.99,
    OperatorKind.GOVERNMENT: 0.95,
    OperatorKind.NONPROFIT: 0.93,
    OperatorKind.SMALL_BUSINESS: 0.72,
}

#: Fraction of servers (regardless of hygiene) that hide their banner.
DEFAULT_HIDDEN_FRACTION = 0.06


class BindVersionPolicy:
    """Assigns BIND version banners to servers.

    Parameters
    ----------
    rng:
        Seeded generator for reproducible assignment.
    hidden_fraction:
        Fraction of servers that refuse to disclose a version.  The paper
        treats those as safe ("optimistic" assumption), and so does the
        default vulnerability database.
    hygiene_scale:
        Global multiplier applied to the per-kind hygiene priors; the
        ablation benches sweep it to study sensitivity of the "45 % of names
        affected" result to the underlying vulnerable-server fraction.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 hidden_fraction: float = DEFAULT_HIDDEN_FRACTION,
                 hygiene_scale: float = 1.0,
                 pools: Optional[Dict[str, Sequence[str]]] = None):
        if not 0.0 <= hidden_fraction < 1.0:
            raise ValueError("hidden_fraction must be in [0, 1)")
        if hygiene_scale <= 0:
            raise ValueError("hygiene_scale must be positive")
        self._rng = rng or random.Random(0)
        self.hidden_fraction = hidden_fraction
        self.hygiene_scale = hygiene_scale
        self._pools = {key: tuple(values) for key, values in
                       (pools or VERSION_POOLS).items()}
        self.assigned_counts: Dict[str, int] = {"safe": 0, "vulnerable": 0,
                                                "hidden": 0}

    def effective_hygiene(self, kind: OperatorKind,
                          tld_hygiene: float = 1.0,
                          org_hygiene: float = 1.0) -> float:
        """Combine the per-kind prior with TLD and organisation modifiers.

        The modifiers are deliberately gentle (25 % weight each) so that the
        operator class remains the dominant factor, matching the paper's
        observation that hygiene tracks who runs the box more than where it
        sits in the namespace.
        """
        base = KIND_HYGIENE.get(kind, 0.8)
        combined = base * (0.75 + 0.25 * tld_hygiene) * \
            (0.75 + 0.25 * org_hygiene)
        combined *= self.hygiene_scale
        return max(0.0, min(1.0, combined))

    def assign(self, kind: OperatorKind, tld_hygiene: float = 1.0,
               org_hygiene: float = 1.0) -> Optional[str]:
        """Draw a version banner for one server.

        Returns ``None`` with probability ``hidden_fraction`` for servers
        whose software is simply not BIND (or is configured to hide).
        """
        roll = self._rng.random()
        if roll < self.hidden_fraction:
            self.assigned_counts["hidden"] += 1
            return self._rng.choice(self._pools["hidden"])
        hygiene = self.effective_hygiene(kind, tld_hygiene, org_hygiene)
        if self._rng.random() < hygiene:
            self.assigned_counts["safe"] += 1
            return self._rng.choice(self._pools["safe"])
        self.assigned_counts["vulnerable"] += 1
        return self._rng.choice(self._pools["vulnerable"])

    def assignment_summary(self) -> Dict[str, float]:
        """Counts and fractions of safe/vulnerable/hidden assignments."""
        total = sum(self.assigned_counts.values()) or 1
        summary: Dict[str, float] = {}
        for key, count in self.assigned_counts.items():
            summary[key] = count
            summary[f"{key}_fraction"] = count / total
        return summary

    def vulnerable_pool(self) -> List[str]:
        """The banners this policy may assign to badly-maintained servers."""
        return list(self._pools["vulnerable"])

    def safe_pool(self) -> List[str]:
        """The banners this policy may assign to well-maintained servers."""
        return list(self._pools["safe"])
