"""Figure 5: CDF of the number of vulnerable nameservers per TCB.

Paper: 45 % of names depend on at least one vulnerable nameserver; the mean
number of vulnerable servers in a TCB is 4.1 (7.6 for the top-500 names).
"""

from conftest import PAPER, comparison_rows
from repro.core.report import CDFSeries


def test_fig5_vulnerable_servers_in_tcb(benchmark, paper_survey,
                                        figure_writer):
    counts = benchmark(paper_survey.vulnerable_in_tcb_counts)
    popular_counts = paper_survey.vulnerable_in_tcb_counts(popular_only=True)
    cdf = CDFSeries.from_values(counts)

    measured = {
        "fraction_names_with_vulnerable_dependency":
            sum(1 for c in counts if c > 0) / len(counts),
        "mean_vulnerable_in_tcb": sum(counts) / len(counts),
        "popular_mean_vulnerable_in_tcb":
            sum(popular_counts) / len(popular_counts),
        "vulnerable_server_fraction":
            paper_survey.vulnerable_server_fraction(),
    }
    lines = comparison_rows(measured, list(measured))
    lines.append("")
    lines.append("CDF sample points: vulnerable-in-TCB -> percentile of names")
    for threshold in (0, 1, 2, 5, 10, 20, 50):
        lines.append(f"  <= {threshold:<3d} {cdf.percentile_at(threshold):6.1f}%")
    figure_writer.write("figure5_vulnerable_in_tcb",
                        "Figure 5: vulnerable nameservers in the TCB", lines)

    # Shape assertions.
    affected = measured["fraction_names_with_vulnerable_dependency"]
    assert 0.3 <= affected <= 0.9
    assert measured["mean_vulnerable_in_tcb"] >= 1.0
    assert measured["mean_vulnerable_in_tcb"] <= 20.0
    # The naive expectation (x % of servers -> x % of names) is beaten by a
    # wide margin because transitive trust poisons whole paths.
    assert affected > 1.5 * measured["vulnerable_server_fraction"]


def test_fig5_popular_names_are_at_least_as_exposed(paper_survey):
    counts = paper_survey.vulnerable_in_tcb_counts()
    popular = paper_survey.vulnerable_in_tcb_counts(popular_only=True)
    mean_all = sum(counts) / len(counts)
    mean_popular = sum(popular) / len(popular)
    # The paper finds popular names are *more* exposed (7.6 vs 4.1); allow a
    # modest slack for the scaled-down cohort but require comparability.
    assert mean_popular >= 0.6 * mean_all
