"""Tests for :mod:`repro.core.availability`."""

import random

import networkx as nx
import pytest

from repro.dns.name import DomainName
from repro.core.availability import (
    AvailabilityAnalyzer,
    availability_security_tradeoff,
)
from repro.core.delegation import (
    DelegationGraph,
    DelegationGraphBuilder,
    name_node,
    ns_node,
    zone_node,
)


def two_level_graph(ns_per_zone=2):
    """name -> [tld zone -> registry NS], [leaf zone -> leaf NS]."""
    graph = nx.DiGraph()
    target = name_node("www.site.com")
    tld = zone_node("com")
    leaf = zone_node("site.com")
    graph.add_edge(target, tld)
    graph.add_edge(target, leaf)
    for index in range(ns_per_zone):
        registry = ns_node(f"ns{index}.registry.net")
        graph.add_edge(tld, registry)
        graph.add_edge(registry, tld)
        leaf_ns = ns_node(f"ns{index}.leaf.net")
        graph.add_edge(leaf, leaf_ns)
        graph.add_edge(leaf_ns, tld)
    return DelegationGraph("www.site.com", graph)


# -- analytic evaluation ---------------------------------------------------------------

def test_perfect_uptime_gives_certain_resolution():
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.resolution_probability(two_level_graph()) == \
        pytest.approx(1.0)


def test_zero_uptime_gives_no_resolution():
    analyzer = AvailabilityAnalyzer(0.0)
    assert analyzer.resolution_probability(two_level_graph()) == \
        pytest.approx(0.0)


def test_single_server_zones_follow_up_probability():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(0.9)
    # The TLD zone needs its single registry server, which in turn needs the
    # TLD zone (cycle -> counted once more as its own up-probability), and
    # the leaf zone needs its server plus the TLD chain for that server's
    # hostname: p^2 * (p * p^2) = p^5.
    expected = 0.9 ** 5
    assert analyzer.resolution_probability(graph) == pytest.approx(expected)


def test_redundancy_improves_availability():
    analyzer = AvailabilityAnalyzer(0.8)
    single = analyzer.resolution_probability(two_level_graph(ns_per_zone=1))
    double = analyzer.resolution_probability(two_level_graph(ns_per_zone=2))
    triple = analyzer.resolution_probability(two_level_graph(ns_per_zone=3))
    assert single < double < triple <= 1.0


def test_per_server_probability_map():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(
        {"ns0.leaf.net": 0.0}, default_up=1.0)
    assert analyzer.up_probability(DomainName("ns0.leaf.net")) == 0.0
    assert analyzer.resolution_probability(graph) == pytest.approx(0.0)


def test_invalid_probabilities_rejected():
    with pytest.raises(ValueError):
        AvailabilityAnalyzer(1.5)
    with pytest.raises(ValueError):
        AvailabilityAnalyzer({"ns.example.com": 0.5}, default_up=-0.1)


def test_empty_graph_has_zero_availability():
    graph = DelegationGraph("www.nowhere.zz", nx.DiGraph())
    analyzer = AvailabilityAnalyzer(0.99)
    assert analyzer.resolution_probability(graph) == 0.0
    assert not analyzer.resolvable_with_failures(graph, set())


# -- exact failure checks ------------------------------------------------------------------

def test_resolvable_with_failures_and_spof():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.resolvable_with_failures(graph, set())
    assert not analyzer.resolvable_with_failures(
        graph, {DomainName("ns0.leaf.net")})
    spof = analyzer.single_points_of_failure(graph)
    assert DomainName("ns0.leaf.net") in spof
    assert DomainName("ns0.registry.net") in spof


def test_redundant_zones_have_no_spof():
    graph = two_level_graph(ns_per_zone=2)
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.single_points_of_failure(graph) == frozenset()
    # Failing one server of each zone still resolves; failing both leaf
    # servers does not.
    assert analyzer.resolvable_with_failures(
        graph, {DomainName("ns0.leaf.net"), DomainName("ns0.registry.net")})
    assert not analyzer.resolvable_with_failures(
        graph, {DomainName("ns0.leaf.net"), DomainName("ns1.leaf.net")})


# -- Monte Carlo agreement ----------------------------------------------------------------------

def test_monte_carlo_close_to_analytic():
    graph = two_level_graph(ns_per_zone=2)
    analyzer = AvailabilityAnalyzer(0.9)
    analytic = analyzer.resolution_probability(graph)
    estimate = analyzer.monte_carlo(graph, samples=3000,
                                    rng=random.Random(5))
    assert abs(estimate - analytic) < 0.05


def test_monte_carlo_validation():
    graph = two_level_graph()
    analyzer = AvailabilityAnalyzer(0.9)
    with pytest.raises(ValueError):
        analyzer.monte_carlo(graph, samples=0)


def test_report_contains_all_fields():
    graph = two_level_graph(ns_per_zone=1)
    analyzer = AvailabilityAnalyzer(0.95)
    report = analyzer.report(graph, samples=200, rng=random.Random(1))
    assert report.name == DomainName("www.site.com")
    assert 0.0 < report.analytic < 1.0
    assert report.monte_carlo is not None
    assert report.samples == 200
    assert report.has_single_point_of_failure


# -- against resolver-built graphs and the trade-off summary -----------------------------------------

def test_mini_internet_availability(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    analyzer = AvailabilityAnalyzer(0.95)
    probability = analyzer.resolution_probability(graph)
    assert 0.8 < probability <= 1.0
    # The analytic value agrees with the exact evaluation under no failures.
    assert analyzer.resolvable_with_failures(graph, set())


def test_failing_whole_provider_kills_hosted_name(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    analyzer = AvailabilityAnalyzer(1.0)
    assert not analyzer.resolvable_with_failures(
        graph, {DomainName("ns1.hostco.com"), DomainName("ns2.hostco.com")})


def test_offsite_secondary_raises_availability(mini_internet):
    """uni.edu (own servers + partner secondary) survives the loss of both
    of its own servers -- the availability benefit the paper describes."""
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.uni.edu")
    analyzer = AvailabilityAnalyzer(1.0)
    assert analyzer.resolvable_with_failures(
        graph, {DomainName("dns1.uni.edu"), DomainName("dns2.uni.edu")})


def test_tradeoff_summary(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graphs = [builder.build(name) for name in
              ("www.example.com", "www.uni.edu", "www.partner.edu")]
    summary = availability_security_tradeoff(graphs, up_probability=0.9)
    assert summary["names"] == 3
    assert summary["mean_tcb_size"] > 0
    assert 0.0 <= summary["mean_availability"] <= 1.0
    assert 0.0 <= summary["fraction_with_spof"] <= 1.0
