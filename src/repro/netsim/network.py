"""The simulated network: host registry, transport, and clock.

:class:`SimulatedNetwork` is the glue between resolvers and authoritative
servers.  It registers :class:`~repro.dns.server.AuthoritativeServer`
instances under their addresses and hostnames, delivers query messages to
them (raising :class:`~repro.dns.errors.ServerFailureError` for hosts that
are down or unknown, just as a timeout would manifest to a real resolver),
accumulates latency on a simulated clock, and keeps transport-level
statistics.

The network is also the registry the survey uses to enumerate "all
nameservers we discovered": every server the topology generator creates is
registered here.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Iterable, Iterator, List, Optional

from repro.dns.errors import ServerFailureError
from repro.dns.message import Message
from repro.dns.name import DomainName, NameLike
from repro.dns.server import AuthoritativeServer
from repro.netsim.latency import LatencyModel


@dataclasses.dataclass
class NetworkStats:
    """Transport-level counters."""

    queries_delivered: int = 0
    queries_failed: int = 0
    total_latency_ms: float = 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean per-query round-trip time."""
        if not self.queries_delivered:
            return 0.0
        return self.total_latency_ms / self.queries_delivered


class SimulatedNetwork:
    """Registry of hosts plus a message transport with latency and failures.

    Parameters
    ----------
    latency_model:
        Model used to charge round-trip time to the clock.  ``None`` uses a
        default model with mild jitter.
    client_region:
        Region the resolver (survey vantage point) is assumed to sit in.
    """

    def __init__(self, latency_model: Optional[LatencyModel] = None,
                 client_region: str = "us"):
        self.latency = latency_model or LatencyModel()
        self.client_region = client_region
        self.clock_ms: float = 0.0
        self.stats = NetworkStats()
        # Guards clock/stats/latency-RNG mutation: the survey engine's
        # thread backend issues queries from several shards concurrently,
        # and unsynchronised float/int read-modify-writes would lose
        # updates.  Query *answers* are time-independent, so results stay
        # deterministic; this keeps the transport accounting consistent.
        self._transport_lock = threading.Lock()
        self._servers_by_name: Dict[DomainName, AuthoritativeServer] = {}
        self._servers_by_address: Dict[str, AuthoritativeServer] = {}

    # -- host registry ---------------------------------------------------------

    def register_server(self, server: AuthoritativeServer) -> None:
        """Register a nameserver under its hostname and all its addresses."""
        self._servers_by_name[server.hostname] = server
        for address in server.addresses:
            self._servers_by_address[address] = server

    def register_all(self, servers: Iterable[AuthoritativeServer]) -> None:
        """Register many servers at once."""
        for server in servers:
            self.register_server(server)

    def find_server(self, target: NameLike) -> Optional[AuthoritativeServer]:
        """Look up a server by hostname or by IP address."""
        target_text = str(target)
        server = self._servers_by_address.get(target_text)
        if server is not None:
            return server
        try:
            return self._servers_by_name.get(DomainName(target_text))
        except Exception:
            return None

    def server_count(self) -> int:
        """Number of distinct registered servers."""
        return len(self._servers_by_name)

    def iter_servers(self) -> Iterator[AuthoritativeServer]:
        """Iterate over all registered servers."""
        return iter(self._servers_by_name.values())

    def servers_in_region(self, region: str) -> List[AuthoritativeServer]:
        """All servers located in ``region``."""
        return [server for server in self._servers_by_name.values()
                if server.region == region]

    def servers_for_operator(self, operator: str) -> List[AuthoritativeServer]:
        """All servers run by ``operator``."""
        return [server for server in self._servers_by_name.values()
                if server.operator == operator]

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds (drives cache expiry)."""
        return self.clock_ms / 1000.0

    def advance_clock(self, milliseconds: float) -> None:
        """Manually advance the simulated clock."""
        if milliseconds < 0:
            raise ValueError("cannot move the clock backwards")
        self.clock_ms += milliseconds

    # -- transport ----------------------------------------------------------------

    def send_query(self, target: NameLike, query: Message,
                   charge_latency: bool = True) -> Message:
        """Deliver ``query`` to the server at ``target`` and return its answer.

        ``target`` may be an IP address or a hostname.  Raises
        :class:`ServerFailureError` when the host is unknown or down, which a
        resolver perceives exactly like a query timeout.
        """
        server = self.find_server(target)
        if server is None:
            with self._transport_lock:
                self.stats.queries_failed += 1
            raise ServerFailureError(str(target), f"no route to host {target}")
        with self._transport_lock:
            if charge_latency:
                rtt = self.latency.sample_rtt(self.client_region,
                                              server.region)
                self.clock_ms += rtt
                self.stats.total_latency_ms += rtt
            if server.is_up:
                delivered = True
                self.stats.queries_delivered += 1
            else:
                delivered = False
                self.stats.queries_failed += 1
        if not delivered:
            raise ServerFailureError(
                str(server.hostname), f"query to {server.hostname} timed out")
        return server.handle_query(query)

    # -- convenience views used by the survey ----------------------------------------

    def vulnerable_servers(self, vulnerability_db) -> List[AuthoritativeServer]:
        """Servers whose software has at least one known vulnerability.

        ``vulnerability_db`` is a
        :class:`~repro.vulns.database.VulnerabilityDatabase`; the method is a
        thin convenience wrapper so survey code can stay declarative.
        """
        return [server for server in self.iter_servers()
                if server.software and
                vulnerability_db.is_vulnerable(server.software)]

    def __repr__(self) -> str:
        return (f"SimulatedNetwork({self.server_count()} servers, "
                f"clock={self.clock_ms:.0f}ms)")
