"""Tests for :mod:`repro.core.tcb`."""

from repro.dns.name import DomainName
from repro.core.delegation import DelegationGraphBuilder
from repro.core.tcb import TCBReport, compute_tcb_report


def build_graph(mini_internet, name):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    return builder.build(name)


def test_report_without_vulnerability_map(mini_internet):
    graph = build_graph(mini_internet, "www.example.com")
    report = compute_tcb_report(graph)
    assert report.size == 4
    assert report.vulnerable_count == 0
    assert report.safe_count == 4
    assert report.safety_percentage == 100.0
    assert not report.has_vulnerable_dependency


def test_report_with_vulnerability_map(mini_internet):
    graph = build_graph(mini_internet, "www.example.com")
    vulnerability_map = {DomainName("ns2.hostco.com"): True}
    report = compute_tcb_report(graph, vulnerability_map)
    assert report.vulnerable_count == 1
    assert report.compromisable_count == 1
    assert report.safety_percentage == 75.0
    assert report.has_vulnerable_dependency
    assert DomainName("ns2.hostco.com") in report.vulnerable


def test_compromisable_map_can_differ(mini_internet):
    graph = build_graph(mini_internet, "www.example.com")
    vulnerability_map = {DomainName("ns2.hostco.com"): True}
    compromisable_map = {DomainName("ns2.hostco.com"): False}
    report = compute_tcb_report(graph, vulnerability_map, compromisable_map)
    assert report.vulnerable_count == 1
    assert report.compromisable_count == 0


def test_in_bailiwick_and_external_counts(mini_internet):
    graph = build_graph(mini_internet, "www.uni.edu")
    report = compute_tcb_report(graph)
    assert report.in_bailiwick_count == 2
    assert report.external_count == report.size - 2
    assert report.external_count > 0


def test_missing_hosts_in_map_treated_as_safe(mini_internet):
    graph = build_graph(mini_internet, "www.uni.edu")
    report = compute_tcb_report(graph, {})
    assert report.vulnerable_count == 0


def test_empty_tcb_is_fully_safe():
    report = TCBReport(name=DomainName("www.example.zz"), servers=set(),
                       in_bailiwick=set(), vulnerable=set(),
                       compromisable=set())
    assert report.size == 0
    assert report.safety_percentage == 100.0


def test_to_dict_roundtrippable_fields(mini_internet):
    graph = build_graph(mini_internet, "www.example.com")
    report = compute_tcb_report(graph, {DomainName("ns2.hostco.com"): True})
    payload = report.to_dict()
    assert payload["name"] == "www.example.com"
    assert payload["size"] == 4
    assert payload["vulnerable"] == 1
    assert "ns1.hostco.com" in payload["servers"]
    assert isinstance(payload["safety_percentage"], float)
