"""DNS record types, classes, opcodes, and response codes.

Only the record types that participate in delegation-chain resolution and in
the survey (A, NS, SOA, CNAME, TXT for ``version.bind``, AAAA, MX, PTR) are
modelled, but the enums carry the real RFC-assigned numeric values so that
snapshots serialised by :mod:`repro.core.snapshot` remain interoperable with
real DNS tooling.
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource record types (RFC 1035 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    DS = 43
    RRSIG = 46
    DNSKEY = 48
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        """Parse a record type from its mnemonic (case-insensitive)."""
        try:
            return cls[text.strip().upper()]
        except KeyError as exc:
            raise ValueError(f"unknown RR type: {text!r}") from exc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class RRClass(enum.IntEnum):
    """Resource record classes.

    ``CH`` (CHAOS) matters to this reproduction because BIND exposes its
    version banner via a ``TXT`` query for ``version.bind`` in class CH,
    which is how the survey fingerprints server software.
    """

    IN = 1
    CH = 3
    HS = 4
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRClass":
        try:
            return cls[text.strip().upper()]
        except KeyError as exc:
            raise ValueError(f"unknown RR class: {text!r}") from exc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class OpCode(enum.IntEnum):
    """DNS message opcodes."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class RCode(enum.IntEnum):
    """DNS response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    @property
    def is_error(self) -> bool:
        """True for any code other than NOERROR."""
        return self is not RCode.NOERROR


#: Default time-to-live, in seconds, applied when records omit one.
DEFAULT_TTL = 86400
