"""Tests for :mod:`repro.topology.distributions`."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.distributions import (
    ZipfSampler,
    bounded_pareto,
    log_uniform_int,
    truncated_geometric,
    weighted_choice,
)


# -- Zipf sampler -----------------------------------------------------------------

def test_zipf_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, exponent=-1)


def test_zipf_samples_within_range():
    sampler = ZipfSampler(10, exponent=1.0)
    rng = random.Random(1)
    draws = [sampler.sample(rng) for _ in range(1000)]
    assert min(draws) >= 1
    assert max(draws) <= 10


def test_zipf_rank_one_is_most_frequent():
    sampler = ZipfSampler(20, exponent=1.2)
    rng = random.Random(2)
    draws = [sampler.sample(rng) for _ in range(5000)]
    counts = {rank: draws.count(rank) for rank in (1, 10, 20)}
    assert counts[1] > counts[10] > counts[20]


def test_zipf_probabilities_sum_to_one():
    sampler = ZipfSampler(50, exponent=0.8)
    total = sum(sampler.probability(rank) for rank in range(1, 51))
    assert total == pytest.approx(1.0, abs=1e-9)
    with pytest.raises(ValueError):
        sampler.probability(0)


def test_zipf_zero_exponent_is_uniform():
    sampler = ZipfSampler(4, exponent=0.0)
    for rank in range(1, 5):
        assert sampler.probability(rank) == pytest.approx(0.25)


def test_zipf_sample_index_is_zero_based():
    sampler = ZipfSampler(5)
    rng = random.Random(3)
    indexes = {sampler.sample_index(rng) for _ in range(200)}
    assert indexes <= set(range(5))
    assert 0 in indexes


# -- bounded Pareto ---------------------------------------------------------------------

def test_bounded_pareto_stays_in_bounds():
    rng = random.Random(4)
    for _ in range(500):
        value = bounded_pareto(rng, 1.0, 100.0, alpha=1.1)
        assert 1.0 <= value <= 100.0


def test_bounded_pareto_is_skewed_low():
    rng = random.Random(5)
    draws = [bounded_pareto(rng, 1.0, 1000.0, alpha=1.2) for _ in range(2000)]
    median = sorted(draws)[len(draws) // 2]
    mean = sum(draws) / len(draws)
    assert median < mean


def test_bounded_pareto_rejects_bad_bounds():
    rng = random.Random(6)
    with pytest.raises(ValueError):
        bounded_pareto(rng, 0.0, 10.0)
    with pytest.raises(ValueError):
        bounded_pareto(rng, 10.0, 1.0)


# -- weighted choice -----------------------------------------------------------------------

def test_weighted_choice_respects_weights():
    rng = random.Random(7)
    draws = [weighted_choice(rng, ["a", "b"], [0.99, 0.01])
             for _ in range(1000)]
    assert draws.count("a") > 900


def test_weighted_choice_validation():
    rng = random.Random(8)
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_choice(rng, [], [])
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a", "b"], [0.0, 0.0])


# -- truncated geometric ----------------------------------------------------------------------

def test_truncated_geometric_bounds():
    rng = random.Random(9)
    draws = [truncated_geometric(rng, 0.5, 2, 5) for _ in range(500)]
    assert min(draws) >= 2
    assert max(draws) <= 5


def test_truncated_geometric_p_one_returns_minimum():
    rng = random.Random(10)
    assert truncated_geometric(rng, 1.0, 3, 10) == 3


def test_truncated_geometric_validation():
    rng = random.Random(11)
    with pytest.raises(ValueError):
        truncated_geometric(rng, 0.0, 1, 5)
    with pytest.raises(ValueError):
        truncated_geometric(rng, 0.5, 5, 1)


# -- log-uniform ---------------------------------------------------------------------------------

def test_log_uniform_int_bounds_and_validation():
    rng = random.Random(12)
    draws = [log_uniform_int(rng, 1, 1000) for _ in range(500)]
    assert min(draws) >= 1
    assert max(draws) <= 1001  # rounding can land one above the top
    with pytest.raises(ValueError):
        log_uniform_int(rng, 0, 10)


# -- property-based checks --------------------------------------------------------------------------

@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=200),
       st.floats(min_value=0.0, max_value=2.5),
       st.integers(min_value=0, max_value=2 ** 31))
def test_zipf_sample_always_valid_rank(n, exponent, seed):
    sampler = ZipfSampler(n, exponent=exponent)
    rng = random.Random(seed)
    rank = sampler.sample(rng)
    assert 1 <= rank <= n


@settings(max_examples=30)
@given(st.floats(min_value=0.01, max_value=0.99),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=5, max_value=20),
       st.integers(min_value=0, max_value=2 ** 31))
def test_truncated_geometric_always_in_range(p, minimum, maximum, seed):
    rng = random.Random(seed)
    value = truncated_geometric(rng, p, minimum, maximum)
    assert minimum <= value <= maximum
