"""Authoritative nameservers.

An :class:`AuthoritativeServer` is a host that serves one or more zones.  It
answers queries exactly the way an authoritative-only BIND instance would:

* authoritative answers for names it owns,
* referrals (NS records plus glue in the additional section) for names below
  one of its zone cuts,
* NXDOMAIN for names inside its zones that do not exist,
* REFUSED for names it is not authoritative for,
* and a ``TXT`` answer for ``version.bind`` in class CH, which is how the
  survey fingerprints the software version a server runs.

Servers also carry operational state used by the analyses: a BIND version
banner, an operator label (university, ISP, registry, ...), a status that can
be flipped to ``DOWN`` or ``COMPROMISED`` for what-if experiments, and the
set of hijacked names an attacker has planted on a compromised server.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.errors import ZoneError
from repro.dns.message import Message, make_query, make_response
from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import RCode, RRClass, RRType
from repro.dns.records import ResourceRecord
from repro.dns.zone import Zone

#: The special name used to fingerprint BIND servers.
VERSION_BIND = DomainName("version.bind")


class ServerStatus(enum.Enum):
    """Operational status of a nameserver."""

    UP = "up"
    DOWN = "down"
    COMPROMISED = "compromised"


@dataclasses.dataclass
class ServerStats:
    """Counters the server maintains about the queries it has answered."""

    queries: int = 0
    answers: int = 0
    referrals: int = 0
    nxdomains: int = 0
    refused: int = 0
    failures: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class AuthoritativeServer:
    """A DNS nameserver serving a set of authoritative zones.

    Parameters
    ----------
    hostname:
        The server's own DNS name (e.g. ``cudns.cit.cornell.edu``).
    addresses:
        IP addresses the server listens on.
    software:
        Version banner returned for ``version.bind`` queries, e.g.
        ``"BIND 8.2.4"``.  ``None`` models servers that refuse the query.
    operator:
        Free-form label describing who runs the server (used by the paper's
        ".edu / .org operators" analysis).
    region:
        Geographic region label, used by the latency model and by the
        "globe-spanning TCB" anecdotes.
    """

    def __init__(self, hostname: NameLike, addresses: Iterable[str] = (),
                 software: Optional[str] = None, operator: str = "unknown",
                 region: str = "us"):
        self.hostname = DomainName(hostname)
        self.addresses: List[str] = list(addresses)
        self.software = software
        self.operator = operator
        self.region = region
        self.status = ServerStatus.UP
        self.stats = ServerStats()
        self._zones: Dict[DomainName, Zone] = {}
        #: Names an attacker has planted after compromising this server.
        self.hijacked_records: Dict[Tuple[DomainName, RRType], str] = {}

    # -- zone management -----------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        """Attach a zone this server is authoritative for."""
        self._zones[zone.apex] = zone

    def remove_zone(self, apex: NameLike) -> None:
        """Detach the zone rooted at ``apex`` (no-op if absent)."""
        self._zones.pop(DomainName(apex), None)

    def zones(self) -> List[Zone]:
        """All zones served, deepest apex first."""
        return sorted(self._zones.values(), key=lambda z: -z.apex.depth)

    def zone_apexes(self) -> List[DomainName]:
        """Apex names of all zones served."""
        return [zone.apex for zone in self.zones()]

    def find_zone(self, name: NameLike) -> Optional[Zone]:
        """The deepest zone containing ``name``, or ``None``.

        Walks the name's ancestor suffixes deepest-first against the zone
        dictionary — O(depth) lookups instead of a scan over every zone
        this server carries (TLD registries carry thousands).
        """
        if not isinstance(name, DomainName):
            name = DomainName(name)
        zones = self._zones
        labels = name.labels
        for start in range(len(labels) + 1):
            zone = zones.get(DomainName._from_labels(labels[start:]))
            if zone is not None:
                return zone
        return None

    def is_authoritative_for(self, name: NameLike) -> bool:
        """True if this server can answer authoritatively for ``name``."""
        zone = self.find_zone(name)
        return zone is not None and zone.is_authoritative_for(name)

    # -- operational state ------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """True unless the server has been failed."""
        return self.status is not ServerStatus.DOWN

    @property
    def is_compromised(self) -> bool:
        """True if an attacker controls this server."""
        return self.status is ServerStatus.COMPROMISED

    def fail(self) -> None:
        """Mark the server as down (it will stop answering queries)."""
        self.status = ServerStatus.DOWN

    def restore(self) -> None:
        """Return the server to normal operation and clear hijacked data."""
        self.status = ServerStatus.UP
        self.hijacked_records.clear()

    def compromise(self) -> None:
        """Mark the server as attacker-controlled.

        A compromised server keeps answering queries (so resolution still
        "works") but will serve any records the attacker plants via
        :meth:`hijack`.
        """
        self.status = ServerStatus.COMPROMISED

    def hijack(self, name: NameLike, address: str,
               rtype: RRType = RRType.A) -> None:
        """Plant a forged record, as an attacker would after compromise.

        Raises :class:`ZoneError` unless the server is compromised, because a
        healthy server only serves its configured zones.
        """
        if not self.is_compromised:
            raise ZoneError(
                f"cannot hijack {name} on {self.hostname}: server not compromised")
        self.hijacked_records[(DomainName(name), rtype)] = address

    # -- query handling -----------------------------------------------------------

    def handle_query(self, query: Message) -> Message:
        """Answer a DNS query.

        The answer logic follows RFC 1034 section 4.3.2 restricted to the
        record types the substrate models.  Servers that are ``DOWN`` raise
        at the network layer before this method is reached; this method only
        deals with protocol-level behaviour.
        """
        self.stats.queries += 1
        question = query.question

        if question.rclass is RRClass.CH:
            return self._answer_chaos(query)

        # A compromised server serves the attacker's records first.
        if self.is_compromised:
            forged = self.hijacked_records.get((question.name, question.rtype))
            if forged is not None:
                response = make_response(query, authoritative=True)
                response.answers.append(ResourceRecord.create(
                    question.name, question.rtype, forged, ttl=300))
                self.stats.answers += 1
                return response

        zone = self.find_zone(question.name)
        if question.rtype is RRType.DS and zone is not None and \
                zone.apex == question.name:
            # DS queries for a zone apex are answered from the parent side of
            # the cut; when this server hosts both parent and child, prefer
            # the parent zone's data (RFC 4035 section 3.1.4.1).
            parent_zone = self.find_zone(question.name.parent())
            if parent_zone is not None and parent_zone.apex != zone.apex:
                zone = parent_zone
        if zone is None:
            self.stats.refused += 1
            return make_response(query, rcode=RCode.REFUSED)

        delegation = zone.find_covering_delegation(question.name)
        if delegation is not None:
            # DS records live on the *parent* side of a zone cut (RFC 4035):
            # a query for the delegated name's DS is answered from this
            # zone's own data rather than referred to the child.
            at_zone_cut = delegation.child == question.name
            if not (at_zone_cut and question.rtype in (RRType.DS,
                                                       RRType.RRSIG)):
                response = make_response(query, authoritative=False)
                response.authority.extend(delegation.ns_records())
                response.additional.extend(delegation.glue_records())
                self.stats.referrals += 1
                return response

        return self._answer_authoritative(query, zone)

    def _answer_authoritative(self, query: Message, zone: Zone) -> Message:
        """Produce an authoritative answer (or NXDOMAIN) from ``zone``."""
        question = query.question
        response = make_response(query, authoritative=True)

        # Follow CNAME chains within the zone.
        name = question.name
        for _ in range(8):
            cname_rrset = zone.get_rrset(name, RRType.CNAME)
            if cname_rrset is None or question.rtype is RRType.CNAME:
                break
            response.answers.extend(cname_rrset.records)
            targets = cname_rrset.targets()
            if not targets:
                break
            name = targets[0]
            if not name.is_subdomain_of(zone.apex):
                break

        rrset = zone.get_rrset(name, question.rtype)
        if rrset:
            response.answers.extend(rrset.records)
            self.stats.answers += 1
            return response

        if response.answers:
            # CNAME chain that left the zone or dead-ends: partial answer.
            self.stats.answers += 1
            return response

        if zone.has_name(question.name):
            # Name exists but not with the requested type (NODATA).
            self.stats.answers += 1
            return response

        response.rcode = RCode.NXDOMAIN
        self.stats.nxdomains += 1
        return response

    def _answer_chaos(self, query: Message) -> Message:
        """Answer CHAOS-class queries (``version.bind`` fingerprinting)."""
        question = query.question
        response = make_response(query, authoritative=True)
        if question.name == VERSION_BIND and question.rtype is RRType.TXT:
            if self.software:
                response.answers.append(ResourceRecord.create(
                    VERSION_BIND, RRType.TXT, self.software,
                    rclass=RRClass.CH, ttl=0))
                self.stats.answers += 1
            else:
                response.rcode = RCode.REFUSED
                self.stats.refused += 1
            return response
        response.rcode = RCode.NOTIMP
        return response

    def query(self, name: NameLike, rtype: RRType = RRType.A,
              rclass: RRClass = RRClass.IN) -> Message:
        """Convenience: build a query for (name, type) and answer it locally."""
        return self.handle_query(make_query(name, rtype, rclass))

    def __repr__(self) -> str:
        return (f"AuthoritativeServer({self.hostname!s}, "
                f"zones={len(self._zones)}, software={self.software!r}, "
                f"status={self.status.value})")
