"""Tests for the simplified DNSSEC model (:mod:`repro.dns.dnssec`)."""

import pytest

from repro.dns.dnssec import (
    ChainValidator,
    ZoneSigner,
    rrset_signature,
    zone_key,
)
from repro.dns.name import DomainName
from repro.dns.rdtypes import RRType
from repro.dns.records import ResourceRecord, RRSet
from repro.dns.zone import Zone


# -- primitives ------------------------------------------------------------------

def test_zone_key_is_deterministic_and_zone_specific():
    assert zone_key("example.com") == zone_key("EXAMPLE.COM.")
    assert zone_key("example.com") != zone_key("other.com")
    assert zone_key("example.com", seed="a") != zone_key("example.com",
                                                         seed="b")


def test_rrset_signature_changes_with_content():
    key = zone_key("example.com")
    base = RRSet("www.example.com", RRType.A, records=[
        ResourceRecord.create("www.example.com", RRType.A, "10.0.0.80")])
    forged = RRSet("www.example.com", RRType.A, records=[
        ResourceRecord.create("www.example.com", RRType.A, "6.6.6.6")])
    assert rrset_signature("example.com", base, key) != \
        rrset_signature("example.com", forged, key)
    # Signature does not depend on record order.
    multi_a = RRSet("www.example.com", RRType.A, records=[
        ResourceRecord.create("www.example.com", RRType.A, "10.0.0.80"),
        ResourceRecord.create("www.example.com", RRType.A, "10.0.0.81")])
    multi_b = RRSet("www.example.com", RRType.A, records=[
        ResourceRecord.create("www.example.com", RRType.A, "10.0.0.81"),
        ResourceRecord.create("www.example.com", RRType.A, "10.0.0.80")])
    assert rrset_signature("example.com", multi_a, key) == \
        rrset_signature("example.com", multi_b, key)


# -- zone signing -----------------------------------------------------------------------

def test_sign_zone_adds_dnskey_and_rrsigs():
    zone = Zone("example.com")
    zone.set_apex_nameservers(["ns1.example.com"])
    zone.add("www.example.com", RRType.A, "10.0.0.80")
    signer = ZoneSigner()
    key = signer.sign_zone(zone)
    assert signer.is_signed("example.com")
    dnskey = zone.get_rrset("example.com", RRType.DNSKEY)
    assert dnskey and str(dnskey.records[0].rdata) == key
    rrsig = zone.get_rrset("www.example.com", RRType.RRSIG)
    assert rrsig is not None
    assert any(str(record.rdata).startswith("A ") for record in rrsig)


def test_sign_zone_is_idempotent_and_refreshes_new_records():
    zone = Zone("example.com")
    zone.set_apex_nameservers(["ns1.example.com"])
    signer = ZoneSigner()
    signer.sign_zone(zone)
    count_first = zone.record_count()
    signer.sign_zone(zone)
    assert zone.record_count() == count_first
    zone.add("new.example.com", RRType.A, "10.0.0.81")
    signer.sign_zone(zone)
    assert zone.get_rrset("new.example.com", RRType.RRSIG) is not None


def test_publish_ds_requires_signed_parent():
    parent = Zone("com")
    parent.set_apex_nameservers(["ns1.gtld.net"])
    child_apex = "example.com"
    signer = ZoneSigner()
    assert signer.publish_ds(parent, child_apex) is None
    signer.sign_zone(parent)
    ds_value = signer.publish_ds(parent, child_apex)
    assert ds_value is not None
    ds_rrset = parent.get_rrset(child_apex, RRType.DS)
    assert ds_rrset and str(ds_rrset.records[0].rdata) == ds_value
    # The DS RRSet itself is signed.
    assert parent.get_rrset(child_apex, RRType.RRSIG) is not None
    # Publishing twice does not duplicate the DS record.
    signer.publish_ds(parent, child_apex)
    assert len(parent.get_rrset(child_apex, RRType.DS)) == 1


# -- chain validation on the mini Internet ----------------------------------------------------

def _sign_chain(mini_internet, apexes):
    signer = ZoneSigner()
    for apex in apexes:
        signer.sign_zone(mini_internet.zones[DomainName(apex)])
    return signer


def test_unsigned_chain_is_insecure(mini_internet):
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.example.com")
    assert result.status == "insecure"
    assert not result.is_secure
    assert result.broken_zone == DomainName("com")


def test_fully_signed_chain_is_secure(mini_internet):
    signer = _sign_chain(mini_internet, ["com", "example.com", "hostco.com"])
    signer.publish_ds(mini_internet.zones[DomainName("com")], "example.com")
    signer.publish_ds(mini_internet.zones[DomainName("com")], "hostco.com")
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.example.com")
    assert result.is_secure, result.detail


def test_missing_ds_makes_island_insecure(mini_internet):
    _sign_chain(mini_internet, ["com", "example.com"])
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.example.com")
    assert result.status == "insecure"
    assert "DS" in result.detail or "no DS" in result.detail


def test_unsigned_leaf_zone_is_insecure(mini_internet):
    _sign_chain(mini_internet, ["com"])
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.example.com")
    assert result.status == "insecure"
    assert result.broken_zone == DomainName("example.com")


def test_hijacked_answer_is_detected_as_bogus(mini_internet):
    signer = _sign_chain(mini_internet, ["com", "example.com", "hostco.com"])
    signer.publish_ds(mini_internet.zones[DomainName("com")], "example.com")
    signer.publish_ds(mini_internet.zones[DomainName("com")], "hostco.com")
    # Attacker compromises the first provider server and forges the answer.
    attacker = mini_internet.servers[DomainName("ns1.hostco.com")]
    attacker.compromise()
    attacker.hijack("www.example.com", "6.6.6.6")
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.example.com")
    assert result.forgery_detected
    assert result.status == "bogus"


def test_forged_addresses_from_resolution_are_detected(mini_internet):
    signer = _sign_chain(mini_internet, ["com", "example.com", "hostco.com"])
    signer.publish_ds(mini_internet.zones[DomainName("com")], "example.com")
    signer.publish_ds(mini_internet.zones[DomainName("com")], "hostco.com")
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.example.com",
                                expected_addresses=["6.6.6.6"])
    assert result.status == "bogus"
    honest = validator.validate("www.example.com",
                                expected_addresses=["10.2.0.80"])
    assert honest.is_secure


def test_unknown_name_is_insecure(mini_internet):
    validator = ChainValidator(mini_internet.make_resolver())
    result = validator.validate("www.nonexistent.zz")
    assert result.status == "insecure"
    assert "no delegation chain" in result.detail
