"""Tests for the distributed survey subsystem (``repro.distrib``).

Covers the wire protocol (framing, checksums, precise failure text), the
coordinator/worker identity guarantee (socket-sharded results byte-identical
to the serial engine, cold and delta), the offline shard merge tool, and
every coordinator failure path the issue names: worker crash mid-shard,
truncated and corrupt frames, connect refusal, response timeout — each
surfacing a :class:`DistribError` (CLI exit 2), never a hang or a partial
result.
"""

import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.core.engine import EngineConfig, SurveyAggregator, SurveyEngine
from repro.core.snapshot import load_results, results_to_dict
from repro.core.survey import Survey
from repro.distrib import DistribError, WireError
from repro.distrib.coordinator import LocalWorkerFleet, ShardCoordinator
from repro.distrib.merge import merge_shard_snapshots
from repro.distrib.wire import (FRAME_BUILD, FRAME_ERROR, FRAME_HEADER_SIZE,
                                FRAME_OK, FRAME_RESULT, FRAME_SHUTDOWN,
                                FRAME_SURVEY, WIRE_MAGIC, _FRAME_HEADER,
                                pack_work_order, parse_address, recv_frame,
                                send_frame, unpack_work_order)
from repro.distrib.worker import WorkerServer
from repro.topology.changes import ChangeJournal
from repro.topology.generator import GeneratorConfig, InternetGenerator


def _strip_metadata(results):
    payload = results_to_dict(results)
    payload.pop("metadata")
    return json.dumps(payload, sort_keys=True)


# -- wire protocol ------------------------------------------------------------------------


def test_parse_address():
    assert parse_address("127.0.0.1:8053") == ("127.0.0.1", 8053)
    assert parse_address("survey-03.example.net:9000") == \
        ("survey-03.example.net", 9000)


@pytest.mark.parametrize("bad", ["8053", "host:", ":8053", "host:abc", ""])
def test_parse_address_rejects_malformed(bad):
    with pytest.raises(DistribError, match="expected host:port"):
        parse_address(bad)


def test_frame_round_trip():
    left, right = socket.socketpair()
    try:
        payload = b"x" * 70000  # larger than one recv() chunk
        sent = send_frame(left, FRAME_SURVEY, payload)
        assert sent == FRAME_HEADER_SIZE + len(payload)
        frame_type, received = recv_frame(right, timeout=5.0)
        assert frame_type == FRAME_SURVEY
        assert received == payload
        send_frame(right, FRAME_OK)
        assert recv_frame(left, timeout=5.0) == (FRAME_OK, b"")
    finally:
        left.close()
        right.close()


def test_recv_frame_rejects_bad_magic():
    left, right = socket.socketpair()
    try:
        left.sendall(b"HTTP" + b"\x00" * (FRAME_HEADER_SIZE - 4))
        with pytest.raises(WireError, match="bad frame magic"):
            recv_frame(right, timeout=5.0)
    finally:
        left.close()
        right.close()


def test_recv_frame_rejects_checksum_mismatch():
    left, right = socket.socketpair()
    try:
        header = _FRAME_HEADER.pack(WIRE_MAGIC, 1, FRAME_RESULT, 0,
                                    0xDEADBEEF, 4)
        left.sendall(header + b"ruin")
        with pytest.raises(WireError,
                           match="RESULT payload checksum mismatch"):
            recv_frame(right, timeout=5.0, peer="worker w1")
    finally:
        left.close()
        right.close()


def test_recv_frame_names_truncation_point():
    left, right = socket.socketpair()
    try:
        header = _FRAME_HEADER.pack(WIRE_MAGIC, 1, FRAME_RESULT, 0, 0, 100)
        left.sendall(header + b"only-sixteen-byt")
        left.close()
        with pytest.raises(
                WireError,
                match=r"connection closed mid-RESULT payload "
                      r"\(16/100 bytes received\)"):
            recv_frame(right, timeout=5.0)
    finally:
        right.close()


def test_recv_frame_timeout_names_missing_part():
    left, right = socket.socketpair()
    try:
        with pytest.raises(WireError,
                           match=r"timed out waiting for frame header"):
            recv_frame(right, timeout=0.2)
    finally:
        left.close()
        right.close()


def test_work_order_round_trip():
    payload = pack_work_order(
        indices=[4, 19, 37], names=["a.com", "b.org", "c.de"],
        popular_flags=[True, False, True],
        specs=["remove:ns1.dead.net", "software:ns2.x.com=BIND 8.2.2"],
        dirty_names=["b.org", "q.net"])
    indices, names, flags, specs, dirty = unpack_work_order(payload)
    assert indices == [4, 19, 37]
    assert names == ["a.com", "b.org", "c.de"]
    assert flags == [True, False, True]
    assert specs == ["remove:ns1.dead.net", "software:ns2.x.com=BIND 8.2.2"]
    assert dirty == ["b.org", "q.net"]


# -- in-process worker fleet --------------------------------------------------------------


@pytest.fixture
def worker_trio():
    """Three WorkerServers on loopback, each served from a thread."""
    servers = [WorkerServer() for _ in range(3)]
    threads = [threading.Thread(target=server.serve_forever, daemon=True)
               for server in servers]
    for thread in threads:
        thread.start()
    yield [server.address for server in servers]
    for thread in threads:
        thread.join(timeout=5)


def test_socket_cold_survey_identical_to_serial(small_internet, worker_trio):
    serial = Survey(small_internet, popular_count=20,
                    backend="serial").run(max_names=90)
    survey = Survey(small_internet, popular_count=20, backend="socket",
                    worker_addrs=worker_trio)
    try:
        sharded = survey.run(max_names=90)
    finally:
        survey.close()
    assert _strip_metadata(sharded) == _strip_metadata(serial)
    assert sharded.headline() == serial.headline()
    assert sharded.metadata["backend"] == "socket"
    assert sharded.metadata["workers"] == 3
    assert sharded.metadata["shards"] == 3


def test_socket_survey_reports_wire_stats(small_internet, worker_trio):
    survey = Survey(small_internet, popular_count=20, backend="socket",
                    worker_addrs=worker_trio)
    try:
        survey.run(max_names=60)
        stats = survey.engine._coordinator.wire_stats()
    finally:
        survey.close()
    assert stats["workers"] == 3
    assert stats["bytes_sent"] > 0
    assert stats["bytes_received"] > stats["bytes_sent"]
    assert len(stats["per_worker"]) == 3
    for per_worker in stats["per_worker"]:
        assert per_worker["sent"] > 0
        assert per_worker["received"] > 0


def test_socket_delta_survey_identical_to_serial(small_internet,
                                                 worker_trio):
    """Two churn epochs through the socket pool match the serial delta
    engine record-for-record (the warm-worker invalidation contract)."""
    config = small_internet.config
    worlds = {"serial": InternetGenerator(config).generate(),
              "socket": InternetGenerator(config).generate()}
    engines = {
        "serial": SurveyEngine(worlds["serial"],
                               config=EngineConfig(backend="serial",
                                                   popular_count=20)),
        "socket": SurveyEngine(worlds["socket"],
                               config=EngineConfig(
                                   backend="socket", popular_count=20,
                                   worker_addrs=tuple(worker_trio))),
    }
    try:
        cold = {key: engine.run(max_names=90)
                for key, engine in engines.items()}
        assert _strip_metadata(cold["socket"]) == _strip_metadata(
            cold["serial"])

        victim = next(host for record in cold["serial"].resolved_records()
                      for host in sorted(record.tcb_servers, key=str))
        journals = {key: ChangeJournal(world)
                    for key, world in worlds.items()}
        for journal in journals.values():
            journal.set_server_software(victim, "BIND 8.2.2")
        first = {key: engines[key].run_delta(cold[key], journals[key])
                 for key in engines}
        assert first["socket"].dirty == first["serial"].dirty
        assert _strip_metadata(first["socket"].results) == \
            _strip_metadata(first["serial"].results)

        # Second epoch on the SAME journals: workers must apply only the
        # unseen spec tail, and must invalidate names the first epoch
        # surveyed on a different worker.
        marks = {key: len(journal) for key, journal in journals.items()}
        for journal in journals.values():
            journal.remove_server(victim)
        second = {key: engines[key].run_delta(first[key].results,
                                              journals[key],
                                              since=marks[key])
                  for key in engines}
        assert second["socket"].dirty == second["serial"].dirty
        assert _strip_metadata(second["socket"].results) == \
            _strip_metadata(second["serial"].results)
    finally:
        engines["socket"].close()


def test_socket_backend_rejects_prefolded_changeset(small_internet,
                                                    worker_trio):
    engine = SurveyEngine(small_internet, config=EngineConfig(
        backend="socket", popular_count=20,
        worker_addrs=tuple(worker_trio)))
    try:
        cold = engine.run(max_names=40)
        journal = ChangeJournal(InternetGenerator(
            small_internet.config).generate())
        with pytest.raises(DistribError, match="pre-folded ChangeSet"):
            engine.run_delta(cold, journal.changes())
    finally:
        engine.close()


def test_worker_rejects_survey_before_build(worker_trio):
    connection = socket.create_connection(parse_address(worker_trio[0]),
                                          timeout=5.0)
    try:
        send_frame(connection, FRAME_SURVEY,
                   pack_work_order([0], ["a.com"], [False], [], []))
        frame_type, payload = recv_frame(connection, timeout=5.0)
        assert frame_type == FRAME_ERROR
        assert "SURVEY before BUILD" in payload.decode("utf-8")
        # The worker survives the error and still answers SHUTDOWN.
        send_frame(connection, FRAME_SHUTDOWN)
        assert recv_frame(connection, timeout=5.0)[0] == FRAME_OK
    finally:
        connection.close()


# -- acceptance scale: 8000 SLDs, two seeds, cold + delta ---------------------------------


@pytest.mark.parametrize("seed", [11, 77])
def test_full_scale_socket_identity(seed):
    """The issue's acceptance bar: at ``sld_count=8000`` the merged
    socket-sharded results are byte-identical to the serial backend,
    cold and after a delta re-survey, with real worker processes."""
    config = GeneratorConfig(seed=seed, sld_count=8000,
                             directory_name_count=800,
                             university_count=40, alexa_count=60,
                             hosting_provider_count=12, isp_count=10)
    # One shared world: cold surveys never mutate it (the backend-parity
    # tests rely on the same invariant), so serial and socket engines can
    # audit each other without paying a second 8000-SLD generation.
    world = InternetGenerator(config).generate()
    with LocalWorkerFleet(2) as fleet:
        engines = {
            "serial": SurveyEngine(world,
                                   config=EngineConfig(backend="serial",
                                                       popular_count=60)),
            "socket": SurveyEngine(world,
                                   config=EngineConfig(
                                       backend="socket", popular_count=60,
                                       worker_addrs=tuple(
                                           fleet.addresses))),
        }
        try:
            cold = {key: engine.run()
                    for key, engine in engines.items()}
            assert _strip_metadata(cold["socket"]) == \
                _strip_metadata(cold["serial"])

            journal = ChangeJournal(world)
            victims = sorted({host
                              for record in
                              cold["serial"].resolved_records()[:40]
                              for host in record.tcb_servers},
                             key=str)[:3]
            journal.set_server_software(victims[0], "BIND 8.2.2")
            journal.remove_server(victims[1])
            journal.move_server_region(victims[2], "eu")
            delta = {key: engines[key].run_delta(cold[key], journal)
                     for key in engines}
            assert delta["socket"].dirty == delta["serial"].dirty
            assert _strip_metadata(delta["socket"].results) == \
                _strip_metadata(delta["serial"].results)
        finally:
            engines["socket"].close()


# -- coordinator failure paths ------------------------------------------------------------


class ScriptedWorker:
    """A fake worker that speaks valid BUILD, then fails SURVEY on cue.

    ``failure(connection)`` runs instead of a RESULT reply — crash the
    connection, send garbage, stall — so the coordinator's error paths
    can be pinned down without real engines.
    """

    def __init__(self, failure):
        self._failure = failure
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        host, port = self._listener.getsockname()[:2]
        self.address = f"{host}:{port}"
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        connection, _peer = self._listener.accept()
        try:
            frame_type, _payload = recv_frame(connection, timeout=10.0)
            assert frame_type == FRAME_BUILD
            send_frame(connection, FRAME_OK)
            frame_type, _payload = recv_frame(connection, timeout=10.0)
            assert frame_type == FRAME_SURVEY
            self._failure(connection)
        except (WireError, OSError):
            pass
        finally:
            connection.close()
            self._listener.close()

    def join(self):
        self._thread.join(timeout=5)


def _run_one_shard(engine, addresses, **coordinator_options):
    coordinator = ShardCoordinator(engine, addresses,
                                   **coordinator_options)
    entries = engine._select_entries(None, 12)
    indexed = list(enumerate(entries))
    aggregator = SurveyAggregator(total=len(indexed))
    try:
        coordinator.run_shards(indexed, set(), aggregator)
    finally:
        coordinator._abort()
    return aggregator


def test_coordinator_reports_worker_crash_mid_shard(small_internet):
    engine = SurveyEngine(small_internet, config=EngineConfig())
    worker = ScriptedWorker(lambda connection: connection.close())
    with pytest.raises(DistribError,
                       match=r"worker 127\.0\.0\.1:\d+: connection closed "
                             r"mid-frame header"):
        _run_one_shard(engine, [worker.address])
    worker.join()


def test_coordinator_reports_truncated_result_frame(small_internet):
    engine = SurveyEngine(small_internet, config=EngineConfig())

    def truncate(connection):
        header = _FRAME_HEADER.pack(WIRE_MAGIC, 1, FRAME_RESULT, 0, 0, 4096)
        connection.sendall(header + b"\x00" * 64)
        connection.close()

    worker = ScriptedWorker(truncate)
    with pytest.raises(DistribError,
                       match=r"connection closed mid-RESULT payload "
                             r"\(64/4096 bytes received\)"):
        _run_one_shard(engine, [worker.address])
    worker.join()


def test_coordinator_reports_corrupt_result_frame(small_internet):
    engine = SurveyEngine(small_internet, config=EngineConfig())

    def corrupt(connection):
        header = _FRAME_HEADER.pack(WIRE_MAGIC, 1, FRAME_RESULT, 0,
                                    0xBAD0CAFE, 8)
        connection.sendall(header + b"\x00" * 8)

    worker = ScriptedWorker(corrupt)
    with pytest.raises(DistribError, match="checksum mismatch"):
        _run_one_shard(engine, [worker.address])
    worker.join()


def test_coordinator_times_out_on_stalled_worker(small_internet):
    engine = SurveyEngine(small_internet, config=EngineConfig())
    release = threading.Event()

    def stall(connection):
        release.wait(timeout=10.0)

    worker = ScriptedWorker(stall)
    started = time.monotonic()
    with pytest.raises(DistribError, match="timed out waiting for"):
        _run_one_shard(engine, [worker.address], response_timeout=0.5)
    assert time.monotonic() - started < 5.0
    release.set()
    worker.join()


def test_coordinator_reports_connect_refusal(small_internet):
    engine = SurveyEngine(small_internet, config=EngineConfig())
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(DistribError,
                       match=rf"cannot connect to worker "
                             rf"127\.0\.0\.1:{dead_port}"):
        ShardCoordinator(engine, [f"127.0.0.1:{dead_port}"],
                         connect_timeout=2.0)


def test_coordinator_requires_worker_addresses(small_internet):
    with pytest.raises(ValueError, match="worker_addrs"):
        EngineConfig(backend="socket").validate()


def test_cli_socket_failure_exits_two(capsys):
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    exit_code = main(["survey", "--sld-count", "40", "--directory-names",
                      "60", "--universities", "10", "--max-names", "10",
                      "--backend", "socket", "--worker-addrs",
                      f"127.0.0.1:{dead_port}"])
    assert exit_code == 2
    error_line = capsys.readouterr().err
    assert "error: cannot connect to worker" in error_line


# -- the offline shard merge tool ---------------------------------------------------------


TINY = ["--sld-count", "60", "--directory-names", "90",
        "--universities", "12", "--seed", "4242"]


def _write_shards(tmp_path, count, capsys):
    paths = []
    for index in range(count):
        path = tmp_path / f"shard{index}.rsnap"
        assert main(["survey", *TINY, "--shard", f"{index}/{count}",
                     "--output", str(path)]) == 0
        paths.append(path)
    capsys.readouterr()
    return paths


def test_merge_matches_serial_snapshot(tmp_path, capsys):
    serial_path = tmp_path / "serial.rsnap"
    assert main(["survey", *TINY, "--output", str(serial_path)]) == 0
    shard_paths = _write_shards(tmp_path, 3, capsys)

    merged_path = tmp_path / "merged.rsnap"
    report = merge_shard_snapshots(shard_paths, merged_path)
    assert report.shards == 3
    assert report.bytes_written == merged_path.stat().st_size

    serial = results_to_dict(load_results(serial_path))
    merged = results_to_dict(load_results(merged_path))
    assert report.names == len(serial["records"])
    metadata = merged.pop("metadata")
    serial.pop("metadata")
    assert merged == serial
    assert metadata["backend"] == "merged"
    assert metadata["shards"] == 3
    assert metadata["merged_from"] == [path.name for path in shard_paths]


def test_merge_rejects_overlapping_shards(tmp_path, capsys):
    shard_paths = _write_shards(tmp_path, 2, capsys)
    with pytest.raises(DistribError, match="overlapping shard inputs"):
        merge_shard_snapshots([shard_paths[0], shard_paths[0]],
                              tmp_path / "merged.rsnap")


def test_merge_rejects_incomplete_partition(tmp_path, capsys):
    shard_paths = _write_shards(tmp_path, 2, capsys)
    with pytest.raises(DistribError,
                       match="do not form a complete partition"):
        merge_shard_snapshots([shard_paths[1]], tmp_path / "merged.rsnap")


def test_merge_cli_round_trip(tmp_path, capsys):
    serial_path = tmp_path / "serial.rsnap"
    assert main(["survey", *TINY, "--output", str(serial_path)]) == 0
    shard_paths = _write_shards(tmp_path, 2, capsys)
    merged_path = tmp_path / "merged.rsnap"
    assert main(["merge", *[str(path) for path in shard_paths],
                 "--output", str(merged_path)]) == 0
    assert "merged 2 shard file(s)" in capsys.readouterr().out
    assert main(["diff", str(serial_path), str(merged_path)]) == 0
    assert " 0 changed" in capsys.readouterr().out
