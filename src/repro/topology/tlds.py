"""Top-level-domain catalogue and per-TLD generation profiles.

A :class:`TLDProfile` captures everything the generator needs to know about a
TLD: how many registry nameservers it runs, how many of them are *off-site*
(operated by foreign universities, ISPs, or other registries — the mechanism
the paper blames for enormous ccTLD TCBs), what share of second-level domains
falls under it, and how sloppy its operator community is about BIND upgrades.

The profiles are calibrated against the qualitative ordering the paper
reports:

* gTLDs: ``aero`` and ``int`` have much larger TCBs than the mainstream
  gTLDs; ``com``/``net``/``coop`` are at the small end (Figure 3).
* ccTLDs: ``ua``, ``by``, ``sm``, ``mt``, ``my``, ``pl``, ``it`` head the
  list of most-dependent ccTLDs (Figure 4); ``ws`` relies entirely on old
  BIND (Section 3.2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class TLDProfile:
    """Generation parameters for one top-level domain.

    Attributes
    ----------
    label:
        The TLD label (``"com"``, ``"ua"``, ...).
    kind:
        ``"gtld"`` or ``"cctld"``.
    region:
        Home region of the registry (used for latency and for placing
        off-site dependencies *away* from home).
    registry_ns_count:
        Number of nameservers in the TLD's delegation NS set.
    offsite_dependency_level:
        How many *distinct external organisations* end up in the TLD zone's
        dependency closure.  0 means the registry is self-contained (servers
        with glue under its own infrastructure domain); larger values pull in
        university/ISP webs and inflate the TCB of every name under the TLD.
    sld_share:
        Relative share of generated second-level domains placed under this
        TLD (``com`` dominates, matching the directory composition).
    hygiene:
        0..1 score describing how current the registry and its typical
        registrants keep their BIND installs (1 = modern, 0 = ancient).
        Feeds :class:`~repro.topology.bindpolicy.BindVersionPolicy`.
    """

    label: str
    kind: str
    region: str
    registry_ns_count: int
    offsite_dependency_level: int
    sld_share: float
    hygiene: float

    def __post_init__(self):
        if self.kind not in ("gtld", "cctld"):
            raise ValueError(f"unknown TLD kind: {self.kind!r}")
        if not 0.0 <= self.hygiene <= 1.0:
            raise ValueError("hygiene must be within [0, 1]")
        if self.registry_ns_count < 1:
            raise ValueError("registry_ns_count must be positive")


def _gtld(label: str, registry_ns: int, offsite: int, share: float,
          hygiene: float, region: str = "us") -> Tuple[str, TLDProfile]:
    return label, TLDProfile(label=label, kind="gtld", region=region,
                             registry_ns_count=registry_ns,
                             offsite_dependency_level=offsite,
                             sld_share=share, hygiene=hygiene)


def _cctld(label: str, registry_ns: int, offsite: int, share: float,
           hygiene: float, region: str) -> Tuple[str, TLDProfile]:
    return label, TLDProfile(label=label, kind="cctld", region=region,
                             registry_ns_count=registry_ns,
                             offsite_dependency_level=offsite,
                             sld_share=share, hygiene=hygiene)


#: Generic TLD profiles.  The off-site level ordering follows Figure 3:
#: aero > int > name > mil > info > edu > biz > gov > org > net > com > coop.
GTLD_PROFILES: Dict[str, TLDProfile] = dict([
    _gtld("com", registry_ns=13, offsite=0, share=0.46, hygiene=0.95),
    _gtld("net", registry_ns=13, offsite=0, share=0.12, hygiene=0.95),
    _gtld("org", registry_ns=8, offsite=1, share=0.10, hygiene=0.85),
    _gtld("edu", registry_ns=6, offsite=3, share=0.05, hygiene=0.60),
    _gtld("gov", registry_ns=5, offsite=1, share=0.02, hygiene=0.80),
    _gtld("mil", registry_ns=5, offsite=4, share=0.01, hygiene=0.75),
    _gtld("info", registry_ns=7, offsite=3, share=0.03, hygiene=0.85),
    _gtld("biz", registry_ns=7, offsite=2, share=0.03, hygiene=0.85),
    _gtld("name", registry_ns=5, offsite=5, share=0.01, hygiene=0.80),
    _gtld("aero", registry_ns=5, offsite=8, share=0.005, hygiene=0.70,
          region="eu"),
    _gtld("int", registry_ns=6, offsite=7, share=0.005, hygiene=0.65,
          region="eu"),
    _gtld("coop", registry_ns=6, offsite=0, share=0.005, hygiene=0.90),
])

#: Country-code TLD profiles.  The first fifteen entries are the paper's
#: "most vulnerable" ccTLDs in decreasing order of average TCB size
#: (Figure 4); the rest fill out the long tail of the namespace.
CCTLD_PROFILES: Dict[str, TLDProfile] = dict([
    _cctld("ua", registry_ns=8, offsite=14, share=0.012, hygiene=0.35,
           region="eu"),
    _cctld("by", registry_ns=6, offsite=12, share=0.006, hygiene=0.35,
           region="eu"),
    _cctld("sm", registry_ns=4, offsite=11, share=0.002, hygiene=0.40,
           region="eu"),
    _cctld("mt", registry_ns=4, offsite=10, share=0.003, hygiene=0.45,
           region="eu"),
    _cctld("my", registry_ns=5, offsite=10, share=0.006, hygiene=0.45,
           region="asia"),
    _cctld("pl", registry_ns=7, offsite=9, share=0.015, hygiene=0.50,
           region="eu"),
    _cctld("it", registry_ns=8, offsite=8, share=0.020, hygiene=0.55,
           region="eu"),
    _cctld("mo", registry_ns=4, offsite=8, share=0.002, hygiene=0.45,
           region="asia"),
    _cctld("am", registry_ns=4, offsite=7, share=0.002, hygiene=0.45,
           region="eu"),
    _cctld("ie", registry_ns=5, offsite=7, share=0.005, hygiene=0.60,
           region="eu"),
    _cctld("tp", registry_ns=3, offsite=6, share=0.001, hygiene=0.40,
           region="asia"),
    _cctld("mk", registry_ns=4, offsite=6, share=0.002, hygiene=0.40,
           region="eu"),
    _cctld("hk", registry_ns=6, offsite=5, share=0.008, hygiene=0.60,
           region="asia"),
    _cctld("tw", registry_ns=7, offsite=5, share=0.010, hygiene=0.60,
           region="asia"),
    _cctld("cn", registry_ns=8, offsite=4, share=0.015, hygiene=0.60,
           region="asia"),
    # Long tail of better-run ccTLDs.
    _cctld("uk", registry_ns=8, offsite=1, share=0.030, hygiene=0.85,
           region="eu"),
    _cctld("de", registry_ns=10, offsite=1, share=0.030, hygiene=0.90,
           region="eu"),
    _cctld("fr", registry_ns=8, offsite=2, share=0.018, hygiene=0.85,
           region="eu"),
    _cctld("nl", registry_ns=7, offsite=1, share=0.012, hygiene=0.90,
           region="eu"),
    _cctld("jp", registry_ns=8, offsite=1, share=0.018, hygiene=0.90,
           region="asia"),
    _cctld("kr", registry_ns=6, offsite=2, share=0.010, hygiene=0.70,
           region="asia"),
    _cctld("au", registry_ns=7, offsite=2, share=0.015, hygiene=0.80,
           region="oceania"),
    _cctld("nz", registry_ns=5, offsite=2, share=0.005, hygiene=0.80,
           region="oceania"),
    _cctld("ca", registry_ns=7, offsite=1, share=0.015, hygiene=0.85,
           region="us"),
    _cctld("br", registry_ns=7, offsite=2, share=0.012, hygiene=0.70,
           region="latam"),
    _cctld("mx", registry_ns=5, offsite=2, share=0.008, hygiene=0.65,
           region="latam"),
    _cctld("ar", registry_ns=5, offsite=2, share=0.006, hygiene=0.60,
           region="latam"),
    _cctld("ru", registry_ns=7, offsite=3, share=0.015, hygiene=0.55,
           region="eu"),
    _cctld("se", registry_ns=7, offsite=1, share=0.008, hygiene=0.90,
           region="eu"),
    _cctld("no", registry_ns=6, offsite=1, share=0.006, hygiene=0.90,
           region="eu"),
    _cctld("fi", registry_ns=5, offsite=1, share=0.005, hygiene=0.90,
           region="eu"),
    _cctld("es", registry_ns=6, offsite=2, share=0.010, hygiene=0.75,
           region="eu"),
    _cctld("ch", registry_ns=6, offsite=1, share=0.008, hygiene=0.90,
           region="eu"),
    _cctld("at", registry_ns=5, offsite=2, share=0.006, hygiene=0.80,
           region="eu"),
    _cctld("be", registry_ns=5, offsite=2, share=0.006, hygiene=0.80,
           region="eu"),
    _cctld("dk", registry_ns=5, offsite=1, share=0.005, hygiene=0.85,
           region="eu"),
    _cctld("cz", registry_ns=5, offsite=2, share=0.005, hygiene=0.65,
           region="eu"),
    _cctld("hu", registry_ns=5, offsite=2, share=0.004, hygiene=0.60,
           region="eu"),
    _cctld("gr", registry_ns=5, offsite=3, share=0.004, hygiene=0.55,
           region="eu"),
    _cctld("tr", registry_ns=5, offsite=3, share=0.005, hygiene=0.55,
           region="eu"),
    _cctld("in", registry_ns=5, offsite=3, share=0.008, hygiene=0.55,
           region="asia"),
    _cctld("il", registry_ns=5, offsite=2, share=0.005, hygiene=0.70,
           region="eu"),
    _cctld("za", registry_ns=5, offsite=2, share=0.005, hygiene=0.60,
           region="africa"),
    _cctld("sg", registry_ns=5, offsite=2, share=0.005, hygiene=0.75,
           region="asia"),
    _cctld("th", registry_ns=4, offsite=3, share=0.004, hygiene=0.55,
           region="asia"),
    _cctld("id", registry_ns=4, offsite=4, share=0.004, hygiene=0.45,
           region="asia"),
    _cctld("ws", registry_ns=3, offsite=0, share=0.001, hygiene=0.05,
           region="oceania"),
])

#: The fifteen ccTLDs Figure 4 ranks as most dependent, in paper order.
FIGURE4_CCTLDS: Tuple[str, ...] = (
    "ua", "by", "sm", "mt", "my", "pl", "it", "mo", "am", "ie",
    "tp", "mk", "hk", "tw", "cn",
)

#: The gTLDs Figure 3 plots, in paper order (decreasing TCB size).
FIGURE3_GTLDS: Tuple[str, ...] = (
    "aero", "int", "name", "mil", "info", "edu", "biz", "gov",
    "org", "net", "com", "coop",
)


def gtld_labels() -> List[str]:
    """All generic TLD labels in the catalogue."""
    return list(GTLD_PROFILES)


def cctld_labels() -> List[str]:
    """All country-code TLD labels in the catalogue."""
    return list(CCTLD_PROFILES)


def all_profiles() -> Dict[str, TLDProfile]:
    """Every profile keyed by label."""
    combined = dict(GTLD_PROFILES)
    combined.update(CCTLD_PROFILES)
    return combined


def profile_for(label: str) -> TLDProfile:
    """Profile for ``label``; raises ``KeyError`` for unknown TLDs."""
    return all_profiles()[label]
