"""Incremental re-survey speedup: the dirty-set delta engine acceptance.

The workload the paper implies (transitive trust makes TCBs churn as zones
change hands) is *repeated* surveys of a slowly mutating namespace.  This
bench mutates a handful of leaf zones — a few percent of the directory's
dependency footprint — and measures ``SurveyEngine.run_delta`` against a
cold full survey of the same mutated world.

Acceptance floor: with <= 5 % of names dirty, the delta run must be at
least ``MIN_SPEEDUP`` faster than the cold run *and* byte-identical to it.
Timings land in ``BENCH_results.json`` under the ``delta_resurvey`` key
(the ``delta`` section the CI perf smoke reads).
"""

import json
import os
import time

from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapshot import diff_results, results_to_dict
from repro.topology.changes import ChangeJournal
from repro.topology.generator import InternetGenerator

from conftest import BENCH_CONFIG

#: Acceptance floor on cold-survey / delta-survey wall-clock.  The tiny CI
#: config patches so few names that constant overheads dominate; the floor
#: is asserted in full at bench scale and relaxed for the smoke run.
MIN_SPEEDUP = 10.0 if not os.environ.get("REPRO_BENCH_TINY") else 4.0

#: The dirty fraction the acceptance criterion is stated against.
MAX_DIRTY_FRACTION = 0.05


def _snapshot_bytes(results):
    return json.dumps(results_to_dict(results), sort_keys=True)


def _mutate_leaf_zones(internet, previous, budget=MAX_DIRTY_FRACTION):
    """Journal software changes on self-contained leaf sites.

    Picks servers with the smallest TCB footprints (in-bailiwick boxes of
    self-hosted sites) until just before the dirty fraction would exceed
    ``budget`` — the "a few zones changed hands overnight" workload.
    """
    counts = {}
    for record in previous.resolved_records():
        for host in record.tcb_servers:
            counts[host] = counts.get(host, 0) + 1
    journal = ChangeJournal(internet)
    total = max(len(previous.records), 1)
    dirty_budget = int(total * budget)
    dirty = 0
    for host in sorted(counts, key=lambda h: (counts[h], h)):
        if counts[host] > 3 or dirty + counts[host] > dirty_budget:
            continue
        journal.set_server_software(host, "BIND 8.2.2")
        dirty += counts[host]
        if len(journal) >= 12:
            break
    assert len(journal) > 0, "world too small to pick leaf mutations"
    return journal


def test_bench_incremental_resurvey(figure_writer, bench_metrics):
    """run_delta vs. cold full survey after a small world change."""
    # A private world: the journal mutates it in place, so the shared
    # session-scoped bench_internet must not be used here.
    internet = InternetGenerator(BENCH_CONFIG).generate()
    engine = SurveyEngine(
        internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count))

    start = time.perf_counter()
    previous = engine.run()
    elapsed_first = time.perf_counter() - start

    journal = _mutate_leaf_zones(internet, previous)

    # Median of three runs: a delta pass is so short that single-shot
    # timings are too noisy for the CI regression gate.  Re-running with
    # the same (previous, journal) against the already-mutated world is
    # idempotent — the equivalence assertions below check the first pass.
    timings = []
    outcome = None
    for _ in range(3):
        start = time.perf_counter()
        result = engine.run_delta(previous, journal)
        timings.append(time.perf_counter() - start)
        if outcome is None:
            outcome = result
    elapsed_delta = sorted(timings)[1]

    cold_engine = SurveyEngine(
        internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count))
    start = time.perf_counter()
    cold = cold_engine.run()
    elapsed_cold = time.perf_counter() - start

    stats = outcome.stats
    speedup = elapsed_cold / elapsed_delta
    names_per_s = len(previous.records) / elapsed_delta

    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(cold), \
        "delta re-survey diverged from the cold survey"
    assert diff_results(outcome.results, cold).is_identical
    assert stats.dirty_fraction <= MAX_DIRTY_FRACTION, \
        f"mutation mix dirtied {stats.dirty_fraction:.1%} of the directory"

    figure_writer.write(
        "delta_resurvey", "Incremental re-survey vs. cold full survey",
        [f"names                     {stats.total_names}",
         f"journalled events         {stats.events}",
         f"dirty names               {stats.dirty_names} "
         f"({stats.dirty_fraction:.2%})",
         f"first full survey         {elapsed_first:.3f}s",
         f"cold survey (mutated)     {elapsed_cold:.3f}s",
         f"delta re-survey           {elapsed_delta:.3f}s "
         f"({names_per_s:.0f} names/s effective)",
         f"speedup                   {speedup:.1f}x "
         f"(floor {MIN_SPEEDUP:.0f}x)",
         "results byte-identical to the cold survey"])
    bench_metrics.record(
        "delta_resurvey", names=stats.total_names,
        dirty_names=stats.dirty_names,
        dirty_fraction=round(stats.dirty_fraction, 4),
        elapsed_s=round(elapsed_delta, 4),
        cold_elapsed_s=round(elapsed_cold, 4),
        names_per_s=round(names_per_s, 1),
        speedup=round(speedup, 2))

    assert speedup >= MIN_SPEEDUP, (
        f"delta re-survey only {speedup:.1f}x faster than a cold survey "
        f"with {stats.dirty_fraction:.1%} dirty names")
