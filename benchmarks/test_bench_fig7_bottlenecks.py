"""Figure 7: number of safe bottleneck (min-cut) nameservers per name.

Paper: ~30 % of names have a min-cut consisting entirely of vulnerable
servers (complete hijack with scripted attacks), another ~10 % have exactly
one safe server in the cut (hijackable with one additional DoS), and the
average min-cut is 2.5 servers.
"""

from conftest import PAPER, comparison_rows
from repro.core.mincut import BottleneckAnalyzer
from repro.core.report import CDFSeries


def test_fig7_safe_bottleneck_cdf(benchmark, paper_survey, figure_writer):
    safe_counts = benchmark(paper_survey.safe_bottleneck_counts)
    cdf = CDFSeries.from_values(safe_counts)

    resolved = paper_survey.resolved_records()
    measured = {
        "fraction_completely_hijackable":
            paper_survey.fraction_completely_hijackable(),
        "fraction_one_safe_bottleneck":
            sum(1 for record in resolved if record.mincut_safe == 1 and
                record.mincut_vulnerable > 0) / len(resolved),
        "mean_mincut_size": paper_survey.mean_mincut_size(),
    }
    lines = comparison_rows(measured, list(measured))
    lines.append("")
    lines.append("CDF sample points: safe bottleneck servers -> % of names")
    for threshold in (0, 1, 2, 3, 5, 8):
        lines.append(f"  <= {threshold:<2d} {cdf.percentile_at(threshold):6.1f}%")
    figure_writer.write("figure7_bottlenecks",
                        "Figure 7: safe bottleneck nameservers (min-cut)",
                        lines)

    # Shape assertions.
    assert 0.10 <= measured["fraction_completely_hijackable"] <= 0.55
    assert 0.01 <= measured["fraction_one_safe_bottleneck"] <= 0.30
    assert 1.5 <= measured["mean_mincut_size"] <= 4.5
    # Most names need only a handful of machines for a complete takeover.
    assert cdf.percentile_at(3) >= 80.0


def test_fig7_mincut_computation_speed(benchmark, paper_survey,
                                       bench_internet):
    """Time the bottleneck analysis itself on a sample of names."""
    from repro.core.survey import Survey

    survey = Survey(bench_internet, popular_count=10)
    records = paper_survey.resolved_records()[:40]
    graphs = [survey.builder.build(record.name) for record in records]
    compromisable = {host: True for host in paper_survey.compromisable_servers}

    def run_all():
        analyzer = BottleneckAnalyzer(compromisable)
        return [analyzer.analyze(graph).size for graph in graphs]

    sizes = benchmark(run_all)
    assert len(sizes) == len(graphs)
    assert all(size >= 0 for size in sizes)
