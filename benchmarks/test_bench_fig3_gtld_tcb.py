"""Figure 3: average TCB size per generic TLD.

Paper ordering (decreasing): aero, int, name, mil, info, edu, biz, gov, org,
net, com, coop — with aero/int far above the mainstream gTLDs and an average
over gTLDs of roughly 87 servers.
"""

from conftest import PAPER
from repro.core.report import sort_groups_descending
from repro.topology.tlds import FIGURE3_GTLDS


def test_fig3_gtld_average_tcb(benchmark, paper_survey, figure_writer):
    averages = benchmark(
        lambda: paper_survey.mean_tcb_by_tld(kind="gtld", minimum_samples=3))
    ordered = sort_groups_descending(averages)

    lines = [f"paper gTLD order: {', '.join(FIGURE3_GTLDS)}",
             f"paper mean over gTLDs: {PAPER['gtld_mean_tcb']:.0f}",
             "", "measured (descending):"]
    for label, mean in ordered:
        lines.append(f"  {label:6s} {mean:8.1f}")
    if averages:
        overall = sum(averages.values()) / len(averages)
        lines.append(f"measured mean over gTLDs: {overall:.1f}")
    figure_writer.write("figure3_gtld_tcb", "Figure 3: mean TCB per gTLD",
                        lines)

    # Shape assertions.
    assert "com" in averages and "edu" in averages
    heavy = [label for label in ("aero", "int", "name", "mil")
             if label in averages]
    assert heavy, "at least one of the paper's heavy gTLDs must be measured"
    heaviest = max(averages[label] for label in heavy)
    assert heaviest > 2 * averages["com"], \
        "aero/int-style gTLDs must dwarf com"
    assert averages["edu"] > averages["com"], \
        "edu (university webs) must exceed com (registry-only closure)"
    # com and net share registry infrastructure, so they sit together at the
    # bottom of the ranking.
    bottom_labels = [label for label, _mean in ordered[-4:]]
    assert "com" in bottom_labels
    assert "net" in bottom_labels
