"""Tests for :mod:`repro.core.dnssec_impact` (Section 5 experiments)."""

import pytest

from repro.core.dnssec_impact import (
    DNSSECImpactAnalyzer,
    deploy_dnssec,
)
from repro.core.survey import Survey
from repro.topology.generator import GeneratorConfig, InternetGenerator


@pytest.fixture(scope="module")
def signed_world():
    """A small Internet, its survey, and a full DNSSEC deployment."""
    config = GeneratorConfig(seed=77, sld_count=80, directory_name_count=120,
                             university_count=16, hosting_provider_count=6,
                             isp_count=4, alexa_count=20)
    internet = InternetGenerator(config).generate()
    results = Survey(internet, popular_count=20).run()
    deployment = deploy_dnssec(internet, fraction=1.0)
    return internet, results, deployment


def test_deploy_rejects_bad_fraction(signed_world):
    internet, _results, _deployment = signed_world
    with pytest.raises(ValueError):
        deploy_dnssec(internet, fraction=1.5)


def test_redeploy_same_fraction_is_idempotent(signed_world):
    internet, _results, deployment = signed_world
    again = deploy_dnssec(internet, fraction=1.0)
    assert again.signed_zones == deployment.signed_zones


def test_deploy_rejects_shrinking_an_existing_deployment(signed_world):
    """Signing is additive: a smaller re-deployment over an already-signed
    world would validate against the old deployment while reporting the
    new fraction, so it must fail loudly."""
    internet, _results, _deployment = signed_world
    with pytest.raises(ValueError, match="already carry DNSKEYs"):
        deploy_dnssec(internet, fraction=0.2)


def test_full_deployment_signs_every_zone(signed_world):
    internet, _results, deployment = signed_world
    assert deployment.signed_count == len(internet.zones)
    assert deployment.ds_published > 0
    assert deployment.fraction_requested == 1.0


def test_full_deployment_secures_most_names(signed_world):
    internet, results, deployment = signed_world
    analyzer = DNSSECImpactAnalyzer(internet, deployment)
    report = analyzer.analyze(results, max_names=40)
    assert report.names_checked == 40
    assert report.fraction_secure >= 0.9
    assert report.secure + report.insecure == report.names_checked
    # With a full deployment, every hijackable name is at least detectable.
    assert report.hijackable_undetected <= report.hijackable * 0.2


def test_partial_deployment_leaves_islands():
    config = GeneratorConfig(seed=78, sld_count=60, directory_name_count=90,
                             university_count=12, hosting_provider_count=5,
                             isp_count=3, alexa_count=15)
    internet = InternetGenerator(config).generate()
    results = Survey(internet, popular_count=15).run()
    deployment = deploy_dnssec(internet, fraction=0.3)
    analyzer = DNSSECImpactAnalyzer(internet, deployment)
    report = analyzer.analyze(results, max_names=40)
    assert 0.0 < report.fraction_secure < 1.0
    assert report.insecure > 0


def test_zero_deployment_secures_nothing_below_tlds():
    config = GeneratorConfig(seed=79, sld_count=40, directory_name_count=60,
                             university_count=8, hosting_provider_count=4,
                             isp_count=2, alexa_count=10,
                             plant_anecdotes=False)
    internet = InternetGenerator(config).generate()
    results = Survey(internet, popular_count=10).run()
    deployment = deploy_dnssec(internet, fraction=0.0, always_sign_tlds=False)
    analyzer = DNSSECImpactAnalyzer(internet, deployment)
    report = analyzer.analyze(results, max_names=25)
    assert report.fraction_secure == 0.0
    assert report.hijackable_detected == 0


def test_dnssec_detects_forged_answers_but_not_dos(signed_world):
    """The paper's point: DNSSEC turns silent hijacks into detectable ones,
    yet the delegation chain (and thus denial of service) is unchanged."""
    internet, results, deployment = signed_world
    analyzer = DNSSECImpactAnalyzer(internet, deployment)
    hijackable = [record for record in results.resolved_records()
                  if record.classification in ("complete", "dos-assisted")]
    if not hijackable:
        pytest.skip("no hijackable names in this tiny survey")
    record = hijackable[0]
    validation = analyzer.validate_name(record.name)
    assert validation.is_secure
    # Signing did not change the delegation structure: the bottleneck that
    # made the name hijackable is still there.
    fresh = Survey(internet, popular_count=10).run(names=[record.name])
    assert fresh.records[0].mincut_size == record.mincut_size


def test_report_to_dict_keys(signed_world):
    internet, results, deployment = signed_world
    report = DNSSECImpactAnalyzer(internet, deployment).analyze(
        results, max_names=10)
    payload = report.to_dict()
    assert set(payload) == {"deployment_fraction", "names_checked",
                            "fraction_secure", "hijackable",
                            "hijackable_detected", "hijackable_undetected"}
