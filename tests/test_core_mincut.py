"""Tests for :mod:`repro.core.mincut`.

Besides exercising the analyzer on resolver-built graphs, these tests build
delegation graphs by hand so the expected minimum attack sets are known
exactly.
"""

import networkx as nx

from repro.dns.name import DomainName
from repro.core.delegation import (
    DelegationGraph,
    DelegationGraphBuilder,
    name_node,
    ns_node,
    zone_node,
)
from repro.core.mincut import BottleneckAnalyzer, BottleneckResult


def hand_built_graph():
    """name -> [com zone -> 3 registry NS], [site zone -> ns1, ns2].

    The site's two nameservers live at a provider whose own zone is served
    by the same two servers (a self-contained provider), so the cheapest
    complete takeover is {ns1, ns2} with cost 2.
    """
    graph = nx.DiGraph()
    target = name_node("www.site.com")
    com = zone_node("com")
    site = zone_node("site.com")
    provider = zone_node("provider.com")
    graph.add_edge(target, com)
    graph.add_edge(target, site)
    for index in range(1, 4):
        graph.add_edge(com, ns_node(f"ns{index}.registry.net"))
        graph.add_edge(ns_node(f"ns{index}.registry.net"), com)
    for index in (1, 2):
        host = ns_node(f"ns{index}.provider.com")
        graph.add_edge(site, host)
        graph.add_edge(host, com)
        graph.add_edge(host, provider)
        graph.add_edge(provider, host)
    return DelegationGraph("www.site.com", graph)


def test_unweighted_mincut_is_the_weakest_zone():
    graph = hand_built_graph()
    analyzer = BottleneckAnalyzer(vulnerability_aware=False)
    result = analyzer.analyze(graph)
    assert result.feasible
    assert result.size == 2
    assert {str(host) for host in result.cut_servers} == {
        "ns1.provider.com", "ns2.provider.com"}


def test_vulnerability_aware_cut_counts_safe_servers():
    graph = hand_built_graph()
    vulnerability_map = {DomainName("ns1.provider.com"): True}
    analyzer = BottleneckAnalyzer(vulnerability_map)
    result = analyzer.analyze(graph)
    assert result.size == 2
    assert result.vulnerable_in_cut == 1
    assert result.safe_in_cut == 1
    assert result.one_safe_server
    assert not result.fully_vulnerable


def test_fully_vulnerable_cut_detected():
    graph = hand_built_graph()
    vulnerability_map = {DomainName("ns1.provider.com"): True,
                         DomainName("ns2.provider.com"): True}
    result = BottleneckAnalyzer(vulnerability_map).analyze(graph)
    assert result.fully_vulnerable
    assert result.safe_in_cut == 0
    assert result.vulnerable_in_cut == 2


def test_vulnerability_aware_prefers_vulnerable_route():
    """A vulnerable registry makes attacking the (larger) TLD zone cheaper in
    safe-server terms than attacking the (smaller) safe leaf zone."""
    graph = nx.DiGraph()
    target = name_node("www.x.tld")
    tld = zone_node("tld")
    leaf = zone_node("x.tld")
    graph.add_edge(target, tld)
    graph.add_edge(target, leaf)
    graph.add_edge(tld, ns_node("a.registry.tld"))
    graph.add_edge(ns_node("a.registry.tld"), tld)
    for index in (1, 2):
        host = ns_node(f"ns{index}.x.tld")
        graph.add_edge(leaf, host)
        graph.add_edge(host, tld)
    delegation_graph = DelegationGraph("www.x.tld", graph)
    vulnerability_map = {DomainName("a.registry.tld"): True}
    aware = BottleneckAnalyzer(vulnerability_map).analyze(delegation_graph)
    assert aware.safe_in_cut == 0
    assert {str(h) for h in aware.cut_servers} == {"a.registry.tld"}
    unaware = BottleneckAnalyzer(vulnerability_map,
                                 vulnerability_aware=False).analyze(
        delegation_graph)
    assert unaware.size == 1


def test_indirect_attack_through_nameserver_hostname():
    """Blocking a nameserver by hijacking its hostname's own zone.

    The leaf zone has two NS; one of them can be neutralised by compromising
    the single server of the zone its hostname lives in, so the optimal cut
    is {other NS, that single upstream server}.
    """
    graph = nx.DiGraph()
    target = name_node("www.leaf.org")
    leaf = zone_node("leaf.org")
    upstream = zone_node("upstream.net")
    graph.add_edge(target, leaf)
    ns_local = ns_node("ns1.leaf.org")
    ns_remote = ns_node("ns.remote.upstream.net")
    graph.add_edge(leaf, ns_local)
    graph.add_edge(leaf, ns_remote)
    graph.add_edge(ns_remote, upstream)
    single = ns_node("only.upstream.net")
    graph.add_edge(upstream, single)
    delegation_graph = DelegationGraph("www.leaf.org", graph)
    result = BottleneckAnalyzer(vulnerability_aware=False).analyze(
        delegation_graph)
    assert result.size == 2
    cut = {str(h) for h in result.cut_servers}
    assert "ns1.leaf.org" in cut
    # The second server is either the remote NS itself or the single server
    # controlling its address resolution -- both are minimum-cost choices.
    assert cut - {"ns1.leaf.org"} <= {"ns.remote.upstream.net",
                                      "only.upstream.net"}


def test_cycles_do_not_blow_up():
    """Mutual secondaries form dependency cycles; the analyzer must still
    terminate and fall back to direct attacks."""
    graph = nx.DiGraph()
    target = name_node("www.a.edu")
    zone_a = zone_node("a.edu")
    zone_b = zone_node("b.edu")
    graph.add_edge(target, zone_a)
    ns_a = ns_node("dns.a.edu")
    ns_b = ns_node("dns.b.edu")
    graph.add_edge(zone_a, ns_a)
    graph.add_edge(zone_a, ns_b)
    graph.add_edge(zone_b, ns_b)
    graph.add_edge(zone_b, ns_a)
    graph.add_edge(ns_a, zone_a)
    graph.add_edge(ns_b, zone_b)
    graph.add_edge(ns_a, zone_b)
    graph.add_edge(ns_b, zone_a)
    delegation_graph = DelegationGraph("www.a.edu", graph)
    result = BottleneckAnalyzer(vulnerability_aware=False).analyze(
        delegation_graph)
    assert result.feasible
    assert result.size == 2


def test_empty_graph_is_infeasible():
    graph = DelegationGraph("www.nowhere.zz", nx.DiGraph())
    result = BottleneckAnalyzer().analyze(graph)
    assert not result.feasible
    assert result.size == 0
    assert not result.fully_vulnerable


def test_result_to_dict():
    graph = hand_built_graph()
    result = BottleneckAnalyzer(
        {DomainName("ns1.provider.com"): True}).analyze(graph)
    payload = result.to_dict()
    assert payload["size"] == 2
    assert payload["safe_in_cut"] == 1
    assert payload["feasible"] is True
    assert len(payload["servers"]) == 2


# -- against resolver-built graphs -------------------------------------------------------

def test_mini_internet_hosted_name_cut(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    result = BottleneckAnalyzer(vulnerability_aware=False).analyze(graph)
    # The mini Internet has two-server zones at every level, so the minimum
    # cut has size two: either the hosting provider's pair or the (equally
    # small) com registry pair.
    assert result.size == 2
    cut = {str(h) for h in result.cut_servers}
    assert cut in ({"ns1.hostco.com", "ns2.hostco.com"},
                   {"ns1.gtld.net", "ns2.gtld.net"})


def test_mini_internet_cut_never_exceeds_tcb(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    for name in ("www.example.com", "www.uni.edu", "www.partner.edu",
                 "www.hostco.com"):
        graph = builder.build(name)
        result = BottleneckAnalyzer(vulnerability_aware=False).analyze(graph)
        assert result.feasible
        assert 0 < result.size <= graph.tcb_size()
        assert result.cut_servers <= graph.tcb()


def test_analyze_unweighted_helper(mini_internet):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    graph = builder.build("www.example.com")
    vulnerability_map = {DomainName("ns1.hostco.com"): True,
                         DomainName("ns2.hostco.com"): True}
    analyzer = BottleneckAnalyzer(vulnerability_map)
    aware = analyzer.analyze(graph)
    unweighted = analyzer.analyze_unweighted(graph)
    assert aware.fully_vulnerable
    assert unweighted.size <= aware.size or unweighted.size == aware.size
