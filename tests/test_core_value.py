"""Tests for :mod:`repro.core.value`."""

from repro.dns.name import DomainName
from repro.core.value import NameserverValueAnalyzer


def build_analyzer():
    vulnerability_map = {DomainName("ns1.bighost.com"): True}
    analyzer = NameserverValueAnalyzer(vulnerability_map)
    # 10 names at bighost, 2 at smallhost, 1 at a university server.
    for index in range(10):
        analyzer.add_name(["ns1.bighost.com", "ns2.bighost.com",
                           "a.gtld-servers.net"])
    for index in range(2):
        analyzer.add_name(["ns1.smallhost.net", "a.gtld-servers.net"])
    analyzer.add_name(["dns1.univ.edu", "a.gtld-servers.net"])
    return analyzer


def test_counts_and_totals():
    analyzer = build_analyzer()
    assert analyzer.total_names == 13
    assert analyzer.server_count == 5
    assert analyzer.names_controlled("a.gtld-servers.net") == 13
    assert analyzer.names_controlled("ns1.bighost.com") == 10
    assert analyzer.names_controlled("unknown.example.com") == 0


def test_ranking_order_and_ranks():
    analyzer = build_analyzer()
    ranking = analyzer.ranking()
    assert [str(v.hostname) for v in ranking[:2]] == [
        "a.gtld-servers.net", "ns1.bighost.com"]
    assert ranking[0].rank == 1
    assert ranking[1].rank == 2
    # Ties broken deterministically by hostname.
    tied = [v for v in ranking if v.names_controlled == 10]
    assert [str(v.hostname) for v in tied] == ["ns1.bighost.com",
                                               "ns2.bighost.com"]


def test_ranking_filters():
    analyzer = build_analyzer()
    vulnerable_only = analyzer.ranking(only_vulnerable=True)
    assert [str(v.hostname) for v in vulnerable_only] == ["ns1.bighost.com"]
    edu_only = analyzer.ranking(tld_filter=("edu",))
    assert [str(v.hostname) for v in edu_only] == ["dns1.univ.edu"]
    assert edu_only[0].rank == 1


def test_mean_and_median_names_controlled():
    analyzer = build_analyzer()
    # counts: 13, 10, 10, 2, 1 -> mean 7.2, median 10
    assert analyzer.mean_names_controlled() == 7.2
    assert analyzer.median_names_controlled() == 10


def test_high_leverage_servers_threshold():
    analyzer = build_analyzer()
    # 10 % of 13 names = 1.3; servers controlling more than that:
    high = analyzer.high_leverage_servers(fraction=0.10)
    assert {str(v.hostname) for v in high} == {
        "a.gtld-servers.net", "ns1.bighost.com", "ns2.bighost.com",
        "ns1.smallhost.net"}
    higher = analyzer.high_leverage_servers(fraction=0.5)
    assert {str(v.hostname) for v in higher} == {"a.gtld-servers.net",
                                                 "ns1.bighost.com",
                                                 "ns2.bighost.com"}
    vulnerable_high = analyzer.high_leverage_servers(fraction=0.10,
                                                     only_vulnerable=True)
    assert {str(v.hostname) for v in vulnerable_high} == {"ns1.bighost.com"}


def test_summary_keys_and_values():
    analyzer = build_analyzer()
    summary = analyzer.summary()
    assert summary["servers"] == 5
    assert summary["names"] == 13
    assert summary["high_leverage_vulnerable"] == 1
    assert summary["high_leverage_edu"] == 0
    assert summary["median_names_controlled"] == 10


def test_empty_analyzer_is_well_behaved():
    analyzer = NameserverValueAnalyzer()
    assert analyzer.mean_names_controlled() == 0.0
    assert analyzer.median_names_controlled() == 0.0
    assert analyzer.high_leverage_servers() == []
    assert analyzer.ranking() == []
    assert analyzer.summary()["servers"] == 0


def test_add_many_and_counts_copy():
    analyzer = NameserverValueAnalyzer()
    analyzer.add_many([["ns1.a.com"], ["ns1.a.com", "ns2.a.com"]])
    counts = analyzer.counts()
    counts[DomainName("ns1.a.com")] = 999
    assert analyzer.names_controlled("ns1.a.com") == 2


def test_server_value_to_dict():
    analyzer = build_analyzer()
    value = analyzer.ranking()[0]
    payload = value.to_dict()
    assert payload["hostname"] == "a.gtld-servers.net"
    assert payload["names_controlled"] == 13
    assert payload["rank"] == 1


def test_from_counts_matches_incremental_accumulation():
    incremental = NameserverValueAnalyzer({DomainName("ns1.a.test"): True})
    incremental.add_name(["ns1.a.test", "ns2.a.test"])
    incremental.add_name(["ns1.a.test"])
    incremental.add_name(["ns3.b.test", "ns1.a.test"])

    rebuilt = NameserverValueAnalyzer.from_counts(
        incremental.counts(), incremental.total_names,
        {DomainName("ns1.a.test"): True})
    assert rebuilt.total_names == incremental.total_names
    assert rebuilt.counts() == incremental.counts()
    assert rebuilt.summary() == incremental.summary()
    assert [value.to_dict() for value in rebuilt.ranking()] == \
        [value.to_dict() for value in incremental.ranking()]
