"""The integer graph core, and integer/generic analysis equivalence.

The first half unit-tests :mod:`repro.core.graphcore` (name table, universe
duck API, CSR snapshot, slot bitsets).  The second half is the equivalence
suite the CSR PR promises: for hand-built topologies — including cyclic
(mutual secondaries), self-looped (in-bailiwick NS), and never-resolvable
(dead zone) ones — the bitset/integer paths (closures, min-cut, analytic
availability, bit-parallel Monte-Carlo, SPOF kill sets) must agree exactly
with the frozenset/NodeKey reference paths running on a materialised
:class:`DelegationGraph` of the same shape.
"""

import random

import pytest

from repro.dns.name import DomainName
from repro.core.availability import AvailabilityAnalyzer
from repro.core.delegation import (
    ClosureIndex,
    DelegationGraph,
    TCBView,
    name_node,
    ns_node,
    zone_node,
)
from repro.core.graphcore import (
    DependencyUniverse,
    KeyGraph,
    NameTable,
    NS_CODE,
    ZONE_CODE,
)
from repro.core.mincut import BottleneckAnalyzer


# -- graph core unit behaviour -------------------------------------------------------

def test_name_table_interns_densely():
    table = NameTable()
    a = table.intern(DomainName("a.test"))
    b = table.intern(DomainName("b.test"))
    assert (a, b) == (0, 1)
    assert table.intern(DomainName("a.test")) == a
    assert table.name_of(b) == DomainName("b.test")
    assert len(table) == 2
    assert DomainName("a.test") in table
    assert table.id_of(DomainName("ghost.test")) is None


def test_universe_duck_api_matches_nodekey_encoding():
    universe = DependencyUniverse()
    universe.add_edge(name_node("www.a.test"), zone_node("a.test"))
    universe.add_edge(zone_node("a.test"), ns_node("ns1.a.test"))
    assert name_node("www.a.test") in universe
    assert universe.has_edge(zone_node("a.test"), ns_node("ns1.a.test"))
    assert not universe.has_edge(ns_node("ns1.a.test"), zone_node("a.test"))
    assert list(universe.successors(name_node("www.a.test"))) == \
        [zone_node("a.test")]
    assert list(universe.predecessors(ns_node("ns1.a.test"))) == \
        [zone_node("a.test")]
    assert universe.number_of_nodes() == 3
    assert universe.number_of_edges() == 2
    assert set(universe.nodes) == {name_node("www.a.test"),
                                   zone_node("a.test"), ns_node("ns1.a.test")}
    assert (zone_node("a.test"), ns_node("ns1.a.test")) in set(universe.edges)


def test_universe_assigns_ns_slots_in_discovery_order():
    universe = DependencyUniverse()
    universe.add_edge(zone_node("a.test"), ns_node("ns1.a.test"))
    universe.add_edge(zone_node("a.test"), ns_node("ns2.a.test"))
    universe.add_edge(zone_node("b.test"), ns_node("ns1.a.test"))
    assert universe.slot_count() == 2
    assert universe.slot_hosts[0] == DomainName("ns1.a.test")
    assert universe.slot_hosts[1] == DomainName("ns2.a.test")
    zone_id = universe.find_id(ZONE_CODE, DomainName("a.test"))
    assert universe.ns_slots[zone_id] == -1
    assert universe.mask_to_hosts(0b11) == [DomainName("ns1.a.test"),
                                            DomainName("ns2.a.test")]


def test_universe_csr_snapshot_tracks_growth():
    universe = DependencyUniverse()
    universe.add_edge(zone_node("a.test"), ns_node("ns1.a.test"))
    offsets, targets = universe.csr()
    zone_id = universe.find_id(ZONE_CODE, DomainName("a.test"))
    row = list(targets[offsets[zone_id]:offsets[zone_id + 1]])
    assert row == [universe.find_id(NS_CODE, DomainName("ns1.a.test"))]
    assert universe.csr() is universe.csr()  # cached until the graph grows
    universe.add_edge(zone_node("a.test"), ns_node("ns2.a.test"))
    offsets, targets = universe.csr()
    row = list(targets[offsets[zone_id]:offsets[zone_id + 1]])
    assert len(row) == 2


def test_universe_merge_reinterns_ids():
    left = DependencyUniverse()
    left.add_edge(zone_node("a.test"), ns_node("ns.a.test"))
    right = DependencyUniverse()
    right.add_edge(zone_node("b.test"), ns_node("ns.b.test"))
    right.add_edge(zone_node("a.test"), ns_node("ns.b.test"))
    left.merge(right)
    assert left.has_edge(zone_node("b.test"), ns_node("ns.b.test"))
    assert left.has_edge(zone_node("a.test"), ns_node("ns.a.test"))
    assert left.has_edge(zone_node("a.test"), ns_node("ns.b.test"))
    assert left.slot_count() == 2


def test_keygraph_mirrors_digraph_surface():
    graph = KeyGraph()
    graph.add_edge(name_node("www.a.test"), zone_node("a.test"))
    graph.add_edge(zone_node("a.test"), ns_node("ns.a.test"))
    assert name_node("www.a.test") in graph
    assert graph.has_edge(zone_node("a.test"), ns_node("ns.a.test"))
    assert list(graph.successors(zone_node("a.test"))) == \
        [ns_node("ns.a.test")]
    assert list(graph.predecessors(zone_node("a.test"))) == \
        [name_node("www.a.test")]
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 2


# -- equivalence suite: integer paths vs. the generic reference ------------------------

#: Topologies as NodeKey edge lists.  Every shape the recursions special-case
#: is represented: plain chains, shared dependencies, mutual-secondary
#: cycles, self-loops through in-bailiwick nameservers, dead zones (no
#: nameservers), and names whose chain was never discovered.
TOPOLOGIES = {
    "chain": [
        (name_node("www.a.test"), zone_node("test")),
        (name_node("www.a.test"), zone_node("a.test")),
        (zone_node("test"), ns_node("ns1.nic.test")),
        (zone_node("test"), ns_node("ns2.nic.test")),
        (zone_node("a.test"), ns_node("ns1.a.test")),
        (zone_node("a.test"), ns_node("ns2.a.test")),
    ],
    "cyclic": [
        # Mutual secondaries: a.test's server depends on b.test and vice
        # versa — the classic SCC the closure index collapses.
        (name_node("www.a.test"), zone_node("a.test")),
        (zone_node("a.test"), ns_node("ns.a.test")),
        (ns_node("ns.a.test"), zone_node("b.test")),
        (zone_node("b.test"), ns_node("ns.b.test")),
        (ns_node("ns.b.test"), zone_node("a.test")),
        (zone_node("b.test"), ns_node("ns2.b.test")),
    ],
    "self_loop": [
        # In-bailiwick nameserver whose own chain crosses its zone: the
        # single-node cycle every real SLD with glued servers exhibits.
        (name_node("www.a.test"), zone_node("a.test")),
        (zone_node("a.test"), ns_node("ns1.a.test")),
        (ns_node("ns1.a.test"), zone_node("a.test")),
        (zone_node("a.test"), ns_node("offsite.b.test")),
        (ns_node("offsite.b.test"), zone_node("b.test")),
        (zone_node("b.test"), ns_node("ns.b.test")),
    ],
    "never_resolvable": [
        # The name's zone is served only by a host whose chain crosses a
        # dead (nameserver-less) zone: resolution can never succeed.
        (name_node("www.a.test"), zone_node("a.test")),
        (zone_node("a.test"), ns_node("ns.dead.test")),
        (ns_node("ns.dead.test"), zone_node("dead.test")),
    ],
    "shared_diamond": [
        (name_node("www.a.test"), zone_node("test")),
        (name_node("www.a.test"), zone_node("a.test")),
        (zone_node("test"), ns_node("ns1.nic.test")),
        (zone_node("a.test"), ns_node("ns1.nic.test")),
        (zone_node("a.test"), ns_node("ns1.a.test")),
        (ns_node("ns1.a.test"), zone_node("test")),
        (ns_node("ns1.nic.test"), zone_node("test")),
    ],
}

#: Vulnerable hosts per topology (exercises the lexicographic min-cut).
VULNERABLE = {
    "chain": {"ns1.a.test", "ns1.nic.test"},
    "cyclic": {"ns.b.test"},
    "self_loop": {"ns1.a.test", "ns.b.test"},
    "never_resolvable": set(),
    "shared_diamond": {"ns1.nic.test"},
}


def _twin(edges):
    """Build the same topology as (int universe + index, generic graph)."""
    universe = DependencyUniverse()
    generic = KeyGraph()
    for source, target in edges:
        universe.add_edge(source, target)
        generic.add_edge(source, target)
    return universe, ClosureIndex(universe), generic


def _int_view(universe, closures, name) -> TCBView:
    """A TCBView over a hand-built universe (what the builder would make)."""
    target_id = universe.ensure_key(name_node(name))
    mask = closures.closure_mask_id(target_id)
    return TCBView(name, universe, mask, structure=closures,
                   target_id=target_id)


def _reference_closure(generic, node):
    """Reachable non-excluded NS hostnames via a plain BFS (ground truth)."""
    if node not in generic:
        return frozenset()
    seen = {node}
    stack = [node]
    while stack:
        for succ in generic.successors(stack.pop()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return frozenset(key[1] for key in seen if key[0] == "ns")


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_bitset_closures_match_reference(topology):
    universe, closures, generic = _twin(TOPOLOGIES[topology])
    for node in list(universe.nodes):
        assert closures.closure(node) == _reference_closure(generic, node), \
            f"closure mismatch at {node} in {topology}"


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_integer_mincut_matches_generic(topology):
    universe, closures, generic = _twin(TOPOLOGIES[topology])
    vulnerability = {DomainName(host): True for host in VULNERABLE[topology]}
    view = _int_view(universe, closures, "www.a.test")
    graph = DelegationGraph("www.a.test", generic)
    for aware in (True, False):
        from_view = BottleneckAnalyzer(
            vulnerability, vulnerability_aware=aware).analyze(view)
        from_graph = BottleneckAnalyzer(
            vulnerability, vulnerability_aware=aware).analyze(graph)
        assert from_view.feasible == from_graph.feasible
        assert from_view.cut_servers == from_graph.cut_servers
        assert from_view.safe_in_cut == from_graph.safe_in_cut
        assert from_view.vulnerable_in_cut == from_graph.vulnerable_in_cut


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_integer_availability_matches_generic(topology):
    universe, closures, generic = _twin(TOPOLOGIES[topology])
    view = _int_view(universe, closures, "www.a.test")
    graph = DelegationGraph("www.a.test", generic)
    int_analyzer = AvailabilityAnalyzer(0.9, shared_memo={},
                                        shared_spof_memo={})
    ref_analyzer = AvailabilityAnalyzer(0.9)

    assert int_analyzer.resolution_probability(view) == \
        ref_analyzer.resolution_probability(graph)
    assert int_analyzer.single_points_of_failure(view) == \
        ref_analyzer.single_points_of_failure(graph)
    assert int_analyzer.single_points_of_failure(view) == \
        ref_analyzer.single_points_of_failure_exhaustive(graph)
    assert int_analyzer.monte_carlo(view, samples=64,
                                    rng=random.Random(42)) == \
        ref_analyzer.monte_carlo(graph, samples=64, rng=random.Random(42))
    for failed in ([], ["ns1.a.test"], ["ns1.a.test", "ns2.a.test"],
                   ["ns.a.test", "ns.b.test"]):
        down = {DomainName(host) for host in failed}
        assert int_analyzer.resolvable_with_failures(view, down) == \
            ref_analyzer.resolvable_with_failures(graph, down), \
            f"resolvable mismatch with {failed} down in {topology}"


def test_never_resolvable_name_has_full_tcb_spof():
    universe, closures, _generic = _twin(TOPOLOGIES["never_resolvable"])
    view = _int_view(universe, closures, "www.a.test")
    analyzer = AvailabilityAnalyzer(0.99)
    assert analyzer.resolution_probability(view) == 0.0
    # Unresolvable even with everything up: every TCB member is reported.
    assert analyzer.single_points_of_failure(view) == view.tcb_frozen()


def test_undiscovered_name_is_unresolvable():
    universe, closures, generic = _twin(TOPOLOGIES["chain"])
    view = _int_view(universe, closures, "ghost.test")
    graph = DelegationGraph("ghost.test", generic)
    analyzer = AvailabilityAnalyzer(0.99)
    assert analyzer.resolution_probability(view) == \
        analyzer.resolution_probability(graph) == 0.0
    assert not analyzer.resolvable_with_failures(view, set())


def test_prefix_resume_matches_fresh_analysis_across_many_names():
    """Shared-analyzer evaluation over many names sharing a TLD (the
    prefix-resume + zone-replay machinery) must equal fresh per-name
    generic analysis."""
    universe = DependencyUniverse()
    generic = KeyGraph()

    def edge(source, target):
        universe.add_edge(source, target)
        generic.add_edge(source, target)

    # One TLD with mutually-dependent registry servers (tainted region) and
    # many SLDs below it, with in-bailiwick self-loops and one shared
    # offsite secondary — the shape real survey chains take.
    edge(zone_node("test"), ns_node("a.nic.test"))
    edge(zone_node("test"), ns_node("b.nic.test"))
    edge(ns_node("a.nic.test"), zone_node("nic.test"))
    edge(ns_node("b.nic.test"), zone_node("nic.test"))
    edge(zone_node("nic.test"), ns_node("a.nic.test"))
    edge(zone_node("nic.test"), ns_node("b.nic.test"))
    names = [f"www.sld{i}.test" for i in range(8)]
    for i, name in enumerate(names):
        sld = f"sld{i}.test"
        edge(name_node(name), zone_node("test"))
        edge(name_node(name), zone_node(sld))
        edge(zone_node(sld), ns_node(f"ns1.{sld}"))
        edge(ns_node(f"ns1.{sld}"), zone_node("test"))
        edge(ns_node(f"ns1.{sld}"), zone_node(sld))
        edge(zone_node(sld), ns_node("backup.sld0.test"))
        edge(ns_node("backup.sld0.test"), zone_node("test"))
        edge(ns_node("backup.sld0.test"), zone_node("sld0.test"))

    def per_name_subgraph(name):
        """What builder.build() would materialise: the reachable copy."""
        source = name_node(name)
        copy = KeyGraph()
        copy.add_node(source)
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for succ in generic.successors(node):
                copy.add_edge(node, succ)
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return DelegationGraph(name, copy)

    closures = ClosureIndex(universe)
    vulnerability = {DomainName("ns1.sld3.test"): True,
                     DomainName("backup.sld0.test"): True}
    shared_avail = AvailabilityAnalyzer(0.93, shared_memo={},
                                        shared_spof_memo={})
    shared_cut = BottleneckAnalyzer(vulnerability, shared_memo={})
    for name in names:
        view = _int_view(universe, closures, name)
        graph = per_name_subgraph(name)
        fresh_avail = AvailabilityAnalyzer(0.93)
        fresh_cut = BottleneckAnalyzer(vulnerability)
        assert view.tcb_frozen() == graph.tcb()
        assert shared_avail.resolution_probability(view) == \
            fresh_avail.resolution_probability(graph), name
        assert shared_avail.single_points_of_failure(view) == \
            fresh_avail.single_points_of_failure(graph), name
        got = shared_cut.analyze(view)
        want = fresh_cut.analyze(graph)
        assert (got.cut_servers, got.safe_in_cut) == \
            (want.cut_servers, want.safe_in_cut), name


def test_analyzer_reused_across_universes_resets_slot_cache():
    """Slots are universe-local: a per-server up-model must follow hosts,
    not slot numbers, when one analyzer sees views from two builders."""
    first = DependencyUniverse()
    first.add_edge(name_node("www.a.test"), zone_node("a.test"))
    first.add_edge(zone_node("a.test"), ns_node("ns.down.test"))
    second = DependencyUniverse()
    second.add_edge(name_node("www.a.test"), zone_node("a.test"))
    second.add_edge(zone_node("a.test"), ns_node("ns.up.test"))

    analyzer = AvailabilityAnalyzer({DomainName("ns.down.test"): 0.0},
                                    default_up=1.0)
    view_down = _int_view(first, ClosureIndex(first), "www.a.test")
    view_up = _int_view(second, ClosureIndex(second), "www.a.test")
    assert analyzer.resolution_probability(view_down) == 0.0
    # ns.up.test occupies slot 0 of ITS universe, just like ns.down.test
    # did in the first one — the cached probability must not leak over.
    assert analyzer.resolution_probability(view_up) == 1.0
