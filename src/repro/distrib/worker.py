"""The survey worker: one warm serial engine behind a TCP socket.

``repro-dns worker --listen host:port`` runs a :class:`WorkerServer`.  A
coordinator connects and drives it with frames (:mod:`repro.distrib.wire`):

* **BUILD** — a JSON description of the world (the ``GeneratorConfig``)
  and the engine options (popular count, glue, pass spec strings).  The
  worker regenerates the synthetic Internet locally — world generation is
  seeded and deterministic, so shipping the config *is* shipping the
  world — and builds a serial :class:`~repro.core.engine.SurveyEngine`
  plus a :class:`~repro.topology.changes.ChangeJournal` it will replay
  mutation specs into.
* **SURVEY** — a ``KIND_ORDER`` work order: the shard's directory
  indices + names + popular flags, the full mutation-spec history, and
  the epoch's global dirty-name set.  The worker applies only the spec
  tail it has not seen (keeping its warm universe exactly as stale as a
  serial delta engine's), invalidates like
  :meth:`SurveyEngine._invalidate_for_changes`, surveys its names, and
  replies with a **RESULT** frame whose payload is a ``KIND_SHARD``
  column container (records by global index, fingerprints, verdict maps).
* **SHUTDOWN** — ack and exit.

Handler failures are reported to the coordinator as **ERROR** frames
(with the exception text); wire-level failures drop the connection and
the worker goes back to accepting, so a crashed coordinator never
strands a worker.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional

from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapstore import pack_shard_result
from repro.dns.name import DomainName
from repro.distrib.wire import (FRAME_BUILD, FRAME_ERROR, FRAME_NAMES,
                                FRAME_OK, FRAME_RESULT, FRAME_SHUTDOWN,
                                FRAME_SURVEY, DistribError, WireError,
                                error_payload, recv_frame, send_frame,
                                unpack_work_order)
from repro.topology.changes import ChangeJournal, apply_mutation_spec
from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.topology.webdirectory import DirectoryEntry


def _engine_from_build(payload: bytes) -> SurveyEngine:
    """Regenerate the world and engine a BUILD frame describes."""
    try:
        build = json.loads(payload.decode("utf-8"))
        generator = build["generator"]
        engine_options = build["engine"]
    except (ValueError, KeyError, UnicodeDecodeError) as error:
        raise DistribError(f"malformed BUILD payload: {error}") from error
    # JSON round-trips dataclass tuples as lists; the generator only
    # iterates them, but normalise so reconstructed configs compare equal.
    config = GeneratorConfig(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in generator.items()})
    internet = InternetGenerator(config).generate()
    return SurveyEngine(internet, config=EngineConfig(
        backend="serial",
        popular_count=int(engine_options["popular_count"]),
        include_bottleneck=bool(engine_options["include_bottleneck"]),
        use_glue=bool(engine_options["use_glue"]),
        passes=list(engine_options.get("passes", ()))))


class WorkerServer:
    """Serve one coordinator at a time until a SHUTDOWN frame arrives."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._engine: Optional[SurveyEngine] = None
        self._journal: Optional[ChangeJournal] = None
        self._applied_specs = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept coordinators until one sends SHUTDOWN."""
        try:
            while True:
                connection, _peer = self._listener.accept()
                try:
                    if not self._serve_connection(connection):
                        return
                finally:
                    connection.close()
        finally:
            self._listener.close()

    def _serve_connection(self, connection: socket.socket) -> bool:
        """Handle frames on one connection; False means shut down."""
        while True:
            try:
                frame_type, payload = recv_frame(connection,
                                                 peer="coordinator")
            except WireError:
                # Coordinator gone or stream corrupt: drop the connection
                # and await a fresh coordinator (warm state is kept).
                return True
            if frame_type == FRAME_SHUTDOWN:
                try:
                    send_frame(connection, FRAME_OK)
                except WireError:
                    pass
                return False
            try:
                if frame_type == FRAME_BUILD:
                    self._handle_build(payload)
                    reply_type, reply = FRAME_OK, b""
                elif frame_type == FRAME_SURVEY:
                    reply_type, reply = FRAME_RESULT, \
                        self._handle_survey(payload)
                else:
                    raise DistribError(
                        f"unexpected {FRAME_NAMES[frame_type]} frame "
                        f"(worker accepts BUILD/SURVEY/SHUTDOWN)")
            except Exception as error:  # surfaced to the coordinator
                try:
                    send_frame(connection, FRAME_ERROR, error_payload(
                        f"{type(error).__name__}: {error}"))
                except WireError:
                    return True
                continue
            try:
                send_frame(connection, reply_type, reply)
            except WireError:
                return True

    def _handle_build(self, payload: bytes) -> None:
        self._engine = _engine_from_build(payload)
        self._journal = ChangeJournal(self._engine.internet)
        self._applied_specs = 0

    def _handle_survey(self, payload: bytes) -> bytes:
        engine, journal = self._engine, self._journal
        if engine is None or journal is None:
            raise DistribError("SURVEY before BUILD: worker has no engine")
        indices, names, popular_flags, specs, dirty_names = \
            unpack_work_order(payload, label="work order")

        if len(specs) < self._applied_specs:
            raise DistribError(
                f"work order carries {len(specs)} mutation specs but "
                f"{self._applied_specs} were already applied "
                f"(coordinator restarted without a new BUILD?)")
        tail = specs[self._applied_specs:]
        if tail:
            events_before = len(journal)
            for spec in tail:
                apply_mutation_spec(journal, spec)
            self._applied_specs = len(specs)
            changes = journal.changes(since=events_before)
            # Mirror run_delta: deployment-tracking passes adopt the
            # journalled DNSSEC extension before any invalidation.
            for deployment in changes.dnssec_deployments:
                for pass_ in engine.passes:
                    adopt = getattr(pass_, "adopt_deployment", None)
                    if adopt is not None:
                        adopt(deployment)
            engine._invalidate_for_changes(
                changes, {DomainName(name) for name in dirty_names})

        directory = engine.internet.directory
        context = engine._root
        records = []
        for name, is_popular in zip(names, popular_flags):
            entry = directory.entry(name)
            if entry is None:
                entry = DirectoryEntry(name=DomainName(name),
                                       tld=DomainName(name).tld or "",
                                       category="adhoc", popularity=1.0)
            records.append(engine._survey_entry(context, entry, is_popular))
        return pack_shard_result(
            indices, records, context.fingerprinter.results(),
            dict(context.vulnerability_map),
            dict(context.compromisable_map),
            meta={"worker": self.address, "names": len(indices),
                  "specs_applied": self._applied_specs})
