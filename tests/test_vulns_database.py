"""Tests for :mod:`repro.vulns.database` and fingerprinting."""

import pytest

from repro.dns.name import DomainName
from repro.vulns.bindversion import BindVersion
from repro.vulns.database import (
    Capability,
    DEFAULT_VULNERABILITIES,
    Severity,
    Vulnerability,
    VulnerabilityDatabase,
    default_database,
)
from repro.vulns.fingerprint import Fingerprinter


# -- catalogue content --------------------------------------------------------------

def test_catalogue_is_nonempty_and_covers_three_branches():
    branches = {vuln.branch for vuln in DEFAULT_VULNERABILITIES}
    assert branches == {4, 8, 9}
    assert len(DEFAULT_VULNERABILITIES) >= 12


def test_bind_824_matches_the_papers_four_exploits():
    """The fbi.gov anecdote: BIND 8.2.4 has libbind, negcache, sigrec, and
    the DoS-multi hole."""
    database = default_database()
    exploits = set(database.exploit_names("BIND 8.2.4"))
    assert {"libbind", "negcache", "sigrec", "dos-multi"} <= exploits


def test_modern_versions_are_clean():
    database = default_database()
    for banner in ("BIND 9.2.3", "BIND 8.4.5", "BIND 9.3.0"):
        assert not database.is_vulnerable(banner)
        assert database.worst_severity(banner) is None


def test_affected_ranges_respect_branches():
    database = default_database()
    # 9.2.1 is affected by BIND 9 holes but not by the 8.x sigrec hole.
    exploits = set(database.exploit_names("BIND 9.2.1"))
    assert "sigrec" not in exploits
    assert exploits, "9.2.1 should match at least one BIND 9 advisory"


def test_is_compromisable_distinguishes_dos_only():
    dos_only = Vulnerability(
        ident="dos-test", summary="crash only", branch=8,
        affected_low=BindVersion(8, 1, 0), affected_high=BindVersion(8, 1, 9),
        severity=Severity.MEDIUM, capability=Capability.DENIAL_OF_SERVICE,
        year=2000)
    database = VulnerabilityDatabase([dos_only])
    assert database.is_vulnerable("BIND 8.1.2")
    assert not database.is_compromisable("BIND 8.1.2")


def test_unknown_banner_treated_as_safe_by_default():
    database = default_database()
    assert not database.is_vulnerable("SECRET")
    assert not database.is_vulnerable(None)


def test_unknown_banner_pessimistic_mode():
    database = VulnerabilityDatabase(treat_unknown_as_safe=False)
    assert database.is_vulnerable("SECRET")
    assert not database.is_vulnerable(None)


def test_worst_severity_and_find():
    database = default_database()
    assert database.worst_severity("BIND 8.2.4") is Severity.CRITICAL
    assert database.find("libbind") is not None
    assert database.find("no-such-exploit") is None


def test_add_invalidates_cache():
    database = VulnerabilityDatabase([])
    assert not database.is_vulnerable("BIND 7.0.0")
    database.add(Vulnerability(
        ident="custom", summary="made up", branch=7,
        affected_low=BindVersion(7, 0, 0), affected_high=BindVersion(7, 9, 9),
        severity=Severity.LOW, capability=Capability.COMPROMISE, year=2004))
    assert database.is_vulnerable("BIND 7.0.0")
    assert len(database) == 1


def test_classify_server():
    database = default_database()

    class FakeServer:
        def __init__(self, software):
            self.software = software

    assert database.classify_server(FakeServer("BIND 9.2.3")) == "safe"
    assert database.classify_server(FakeServer("BIND 8.2.4")) == "compromisable"


def test_summary_counts_by_capability():
    database = default_database()
    summary = database.summary()
    assert summary["compromise"] >= 5
    assert summary["dos"] >= 2
    assert sum(summary.values()) == len(database)


def test_vulnerability_str_mentions_range():
    vuln = default_database().find("sigrec")
    assert "8.2" in str(vuln)


# -- fingerprinting over the mini Internet ---------------------------------------------

def test_fingerprint_vulnerable_server(mini_internet):
    fingerprinter = Fingerprinter(mini_internet.network, default_database())
    result = fingerprinter.fingerprint("dns2.partner.edu")
    assert result.reachable
    assert result.banner == "BIND 8.2.4"
    assert result.disclosed
    assert result.is_vulnerable
    assert "sigrec" in result.vulnerabilities


def test_fingerprint_safe_server(mini_internet):
    fingerprinter = Fingerprinter(mini_internet.network, default_database())
    result = fingerprinter.fingerprint("dns1.partner.edu")
    assert result.banner == "BIND 9.2.3"
    assert not result.is_vulnerable


def test_fingerprint_unreachable_server(mini_internet):
    mini_internet.servers[DomainName("dns2.partner.edu")].fail()
    fingerprinter = Fingerprinter(mini_internet.network, default_database())
    result = fingerprinter.fingerprint("dns2.partner.edu")
    assert not result.reachable
    assert result.banner is None
    assert not result.is_vulnerable


def test_fingerprint_results_are_cached(mini_internet):
    fingerprinter = Fingerprinter(mini_internet.network, default_database())
    first = fingerprinter.fingerprint("dns2.partner.edu")
    queries_before = mini_internet.network.stats.queries_delivered
    second = fingerprinter.fingerprint("dns2.partner.edu")
    assert first is second
    assert mini_internet.network.stats.queries_delivered == queries_before


def test_fingerprint_all_and_views(mini_internet):
    fingerprinter = Fingerprinter(mini_internet.network, default_database())
    hostnames = ["dns1.partner.edu", "dns2.partner.edu", "ns1.hostco.com",
                 "ns2.hostco.com"]
    results = fingerprinter.fingerprint_all(hostnames)
    assert len(results) == 4
    vulnerable = {str(h) for h in fingerprinter.vulnerable_hostnames()}
    assert vulnerable == {"dns2.partner.edu", "ns2.hostco.com"}
    assert fingerprinter.disclosure_rate() == 1.0
