"""Tests for :mod:`repro.core.snapshot`."""

import json

import pytest

import dataclasses

from repro.dns.name import DomainName
from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    diff_results,
    load_results,
    results_from_dict,
    results_to_dict,
    save_results,
)


def test_roundtrip_through_dict(small_survey):
    payload = results_to_dict(small_survey)
    assert payload["format_version"] == SNAPSHOT_FORMAT_VERSION
    restored = results_from_dict(payload)
    assert len(restored) == len(small_survey)
    assert restored.vulnerable_servers == small_survey.vulnerable_servers
    assert restored.popular_names == small_survey.popular_names
    assert restored.server_names_controlled == \
        small_survey.server_names_controlled


def test_roundtrip_preserves_headline(small_survey):
    restored = results_from_dict(results_to_dict(small_survey))
    original = small_survey.headline()
    recovered = restored.headline()
    for key, value in original.items():
        assert recovered[key] == pytest.approx(value), key


def test_roundtrip_preserves_record_fields(small_survey):
    restored = results_from_dict(results_to_dict(small_survey))
    original = {str(r.name): r for r in small_survey.records}
    for record in restored.records:
        source = original[str(record.name)]
        assert record.tcb_size == source.tcb_size
        assert record.classification == source.classification
        assert record.tcb_servers == source.tcb_servers
        assert record.mincut_servers == source.mincut_servers


def test_roundtrip_preserves_fingerprints(small_survey):
    restored = results_from_dict(results_to_dict(small_survey))
    assert set(restored.fingerprints) == set(small_survey.fingerprints)
    for hostname, result in list(small_survey.fingerprints.items())[:20]:
        recovered = restored.fingerprints[hostname]
        assert recovered.banner == result.banner
        assert recovered.vulnerabilities == result.vulnerabilities


def test_save_and_load_file(small_survey, tmp_path):
    path = save_results(small_survey, tmp_path / "nested" / "snapshot.json",
                        indent=1)
    assert path.exists()
    with path.open() as handle:
        raw = json.load(handle)
    assert raw["format_version"] == SNAPSHOT_FORMAT_VERSION
    restored = load_results(path)
    assert len(restored) == len(small_survey)
    assert restored.metadata == small_survey.metadata


def test_unsupported_version_rejected(small_survey):
    payload = results_to_dict(small_survey)
    payload["format_version"] = 999
    with pytest.raises(ValueError):
        results_from_dict(payload)


# -- snapshot diffing ------------------------------------------------------------------

def test_diff_identical_snapshots_reports_no_churn(small_survey):
    diff = diff_results(small_survey, small_survey)
    assert diff.common == len(small_survey.records)
    assert diff.only_in_a == [] and diff.only_in_b == []
    assert diff.changed == 0
    assert diff.is_identical
    assert diff.transitions == {}
    for stats in diff.numeric.values():
        assert stats["changed"] == 0.0
        assert stats["max_abs_delta"] == 0.0


def test_diff_reports_added_and_removed_names_as_changes(small_survey):
    """Adds/removals are first-class: equivalence checks must see them."""
    mutated = results_from_dict(results_to_dict(small_survey))
    dropped = mutated.records.pop()
    extra = dataclasses.replace(small_survey.records[0],
                                name=DomainName("brand.new.example"))
    mutated.records.append(extra)

    diff = diff_results(small_survey, mutated)
    assert not diff.is_identical
    assert diff.only_in_a == [dropped.name]
    assert diff.only_in_b == [extra.name]
    presence = {change.name: change.fields["presence"]
                for change in diff.changes if "presence" in change.fields}
    assert presence[dropped.name] == ("present", "absent")
    assert presence[extra.name] == ("absent", "present")
    assert diff.transitions["presence"][("present", "absent")] == 1
    assert diff.transitions["presence"][("absent", "present")] == 1
    assert diff.changed == 2
    mover_names = {change.name for change in diff.top_movers(5)}
    assert {dropped.name, extra.name} <= mover_names


def test_diff_detects_tcb_and_classification_churn(small_survey):
    mutated = results_from_dict(results_to_dict(small_survey))
    victim = mutated.resolved_records()[0]
    mutated.records[mutated.records.index(victim)] = dataclasses.replace(
        victim, tcb_size=victim.tcb_size + 7, classification="complete")
    dropped = mutated.records.pop()

    diff = diff_results(small_survey, mutated)
    assert diff.common == len(small_survey.records) - 1
    assert [str(name) for name in diff.only_in_a] == [str(dropped.name)]
    assert diff.changed >= 1
    assert diff.numeric["tcb_size"]["changed"] == 1.0
    assert diff.numeric["tcb_size"]["max_abs_delta"] == 7.0
    movers = diff.top_movers(3)
    assert movers[0].name == victim.name
    assert movers[0].fields["tcb_size"] == (victim.tcb_size,
                                            victim.tcb_size + 7)
    if victim.classification != "complete":
        key = (victim.classification, "complete")
        assert diff.transitions["classification"][key] == 1


def test_diff_includes_numeric_extras_columns(small_survey):
    before = results_from_dict(results_to_dict(small_survey))
    after = results_from_dict(results_to_dict(small_survey))
    for record in before.records:
        record.extras["availability"] = 0.99
        record.extras["dnssec_status"] = "insecure"
    for record in after.records:
        record.extras["availability"] = 0.97
        record.extras["dnssec_status"] = "secure"
    diff = diff_results(before, after)
    assert diff.numeric["availability"]["mean_delta"] == \
        pytest.approx(-0.02)
    transitions = diff.transitions["dnssec_status"]
    assert transitions[("insecure", "secure")] == len(before.records)
