"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or headline tables
from a survey of a synthetic Internet.  The survey is run once per session
(via the ``paper_survey`` fixture) and the individual benchmarks then time
the analysis that produces each figure, assert that the qualitative shape of
the paper's result holds, and write a paper-vs-measured table to
``benchmarks/output/`` (and to stdout) so the numbers can be inspected after
``pytest benchmarks/ --benchmark-only``.

Absolute numbers are not expected to match the 2004 Internet — the substrate
is a scaled-down synthetic topology — but the *shape* of every result (who
is bigger, by roughly what factor, where the mass of the distribution sits)
is asserted.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource

import pytest

from repro.core.survey import Survey
from repro.topology.generator import GeneratorConfig, InternetGenerator

#: Generator configuration used for every benchmark.  Roughly 2,000 surveyed
#: names over ~2,000 nameservers: large enough for stable distributions,
#: small enough that the whole harness runs in a couple of minutes.  Setting
#: ``REPRO_BENCH_TINY=1`` shrinks the world for CI smoke runs, which check
#: that the harness executes and its floors hold — not absolute numbers.
if os.environ.get("REPRO_BENCH_TINY"):
    BENCH_CONFIG = GeneratorConfig(
        seed=20040722,
        sld_count=220,
        directory_name_count=380,
        university_count=45,
        hosting_provider_count=12,
        isp_count=10,
        alexa_count=60,
    )
else:
    BENCH_CONFIG = GeneratorConfig(
        seed=20040722,
        sld_count=1200,
        directory_name_count=2000,
        university_count=110,
        hosting_provider_count=32,
        isp_count=24,
        alexa_count=300,
    )

#: Reference values reported by the paper, used in the tables each bench
#: prints.  Keys are shared with the measured dictionaries.
PAPER = {
    "names_surveyed": 593160,
    "servers_discovered": 166771,
    "mean_tcb_size": 46.0,
    "median_tcb_size": 26.0,
    "fraction_tcb_over_200": 0.065,
    "popular_mean_tcb_size": 69.0,
    "popular_fraction_tcb_over_200": 0.15,
    "mean_in_bailiwick": 2.2,
    "vulnerable_server_fraction": 0.17,   # 27,141 / 166,771
    "fraction_names_with_vulnerable_dependency": 0.45,
    "mean_vulnerable_in_tcb": 4.1,
    "popular_mean_vulnerable_in_tcb": 7.6,
    "fraction_completely_hijackable": 0.30,
    "fraction_one_safe_bottleneck": 0.10,
    "mean_mincut_size": 2.5,
    "mean_names_controlled": 166.0,
    "median_names_controlled": 4.0,
    "high_leverage_servers": 125,
    "high_leverage_vulnerable": 12,
    "high_leverage_edu": 25,
    "gtld_mean_tcb": 87.0,
    "cctld_mean_tcb": 209.0,
}

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_internet():
    """The synthetic Internet all benchmarks run against."""
    return InternetGenerator(BENCH_CONFIG).generate()


@pytest.fixture(scope="session")
def paper_survey(bench_internet):
    """Survey results over the benchmark Internet (computed once)."""
    survey = Survey(bench_internet, popular_count=BENCH_CONFIG.alexa_count)
    return survey.run()


class FigureWriter:
    """Writes a figure's paper-vs-measured table to disk and stdout."""

    def __init__(self, directory: pathlib.Path):
        self._directory = directory
        self._directory.mkdir(parents=True, exist_ok=True)

    def write(self, figure: str, title: str, lines) -> pathlib.Path:
        """Write ``lines`` under a title; returns the path written."""
        path = self._directory / f"{figure}.txt"
        body = [title, "=" * len(title), *[str(line) for line in lines], ""]
        text = "\n".join(body)
        path.write_text(text, encoding="utf-8")
        print(f"\n{text}")
        return path


@pytest.fixture(scope="session")
def figure_writer():
    """Shared writer for per-figure result tables."""
    return FigureWriter(OUTPUT_DIR)


#: Machine-readable benchmark results, next to the human-readable tables.
BENCH_RESULTS_PATH = OUTPUT_DIR / "BENCH_results.json"

#: Config label stored with every metric so runs at different scales never
#: get compared against each other (the CI smoke runs "tiny", local full
#: runs "full").
BENCH_CONFIG_LABEL = "tiny" if os.environ.get("REPRO_BENCH_TINY") else "full"


class BenchMetrics:
    """Collects per-benchmark metrics and persists them as JSON.

    Every entry lives under its config label (``tiny``/``full``) so the CI
    perf smoke can diff a tiny run against main's committed tiny numbers
    while full-scale numbers ride along untouched.  The file is
    read-merge-written at session end: a session only overwrites the
    benches it actually ran.  ``rss_growth_kb`` is stamped on every
    record: how far this benchmark pushed the process RSS high-water
    mark past where it stood when the benchmark started.  (A single
    process-wide ``ru_maxrss`` would be identical for every bench in the
    session — useless for attributing a memory regression.)
    """

    def __init__(self, path: pathlib.Path, config_label: str):
        self._path = path
        self._config = config_label
        self._entries: dict = {}
        self._bench_start_rss: int = 0

    def begin_bench(self) -> None:
        """Stamp the RSS high-water mark before one benchmark runs."""
        self._bench_start_rss = \
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    def record(self, bench: str, **fields) -> None:
        """Record one benchmark's metrics (numbers only)."""
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        fields["rss_growth_kb"] = peak - self._bench_start_rss
        self._entries[bench] = fields

    def flush(self) -> None:
        """Merge this session's entries into the results file."""
        if not self._entries:
            return
        payload = {"format_version": 1, "configs": {}}
        if self._path.exists():
            try:
                existing = json.loads(self._path.read_text(encoding="utf-8"))
                if isinstance(existing.get("configs"), dict):
                    payload["configs"] = existing["configs"]
            except (ValueError, OSError):
                pass
        section = payload["configs"].setdefault(self._config, {})
        section.update(self._entries)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                              + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_metrics():
    """Session-scoped metrics collector writing BENCH_results.json."""
    metrics = BenchMetrics(BENCH_RESULTS_PATH, BENCH_CONFIG_LABEL)
    yield metrics
    metrics.flush()


@pytest.fixture(autouse=True)
def _bench_rss_baseline(bench_metrics):
    """Per-test RSS baseline so record() reports this bench's growth."""
    bench_metrics.begin_bench()
    yield


def comparison_rows(measured: dict, keys) -> list:
    """Format ``paper vs measured`` rows for the given keys."""
    rows = []
    for key in keys:
        paper_value = PAPER.get(key, float("nan"))
        measured_value = measured.get(key, float("nan"))
        rows.append(f"{key:45s} paper={paper_value:>12.3f}  "
                    f"measured={measured_value:>12.3f}")
    return rows
